"""Fault injection in the network simulator: stepwise + recovery loop."""

import numpy as np
import pytest

from repro import obs
from repro.netsim.runner import build_schedule, run_redistribution, uniform_traffic
from repro.netsim.stepwise import simulate_schedule
from repro.netsim.topology import NetworkSpec
from repro.resilience import FaultSpec, RetryPolicy
from repro.util.errors import ConfigError

SPEC = NetworkSpec.paper_testbed(3, step_setup=0.01)

FAULTS = FaultSpec(
    seed=31,
    transfer_failure_rate=0.15,
    transfer_stall_rate=0.05,
    link_degradation_rate=0.2,
    link_degradation_factor=0.5,
)

RETRY = RetryPolicy(max_attempts=8, backoff_base=0.0, jitter=0.0)


def traffic_case(seed=0, n=4):
    return uniform_traffic(seed, n, n, 8.0, 40.0)


class TestSimulateScheduleFaults:
    def _run(self, faults=None):
        traffic = traffic_case()
        schedule = build_schedule(SPEC, traffic, "oggp", cache=None)
        plan = faults.plan() if faults else None
        return schedule, simulate_schedule(
            SPEC, schedule, volume_scale=SPEC.flow_rate, faults=plan
        )

    def test_fault_free_run_has_no_fault_fields(self):
        _, result = self._run()
        assert result.failed == {}
        assert result.degraded_steps == ()

    def test_faulted_edges_deliver_a_prefix(self):
        schedule, result = self._run(FAULTS)
        assert result.failed, "expected faults at these rates"
        totals: dict[int, float] = {}
        before_fault: dict[int, float] = {}
        for i, step in enumerate(schedule.steps):
            for t in step.transfers:
                totals[t.edge_id] = totals.get(t.edge_id, 0.0) + t.amount
                fault = result.failed.get(t.edge_id)
                if fault is None or i < fault[0]:
                    before_fault[t.edge_id] = (
                        before_fault.get(t.edge_id, 0.0) + t.amount
                    )
        for eid, (step, kind) in result.failed.items():
            assert kind in ("fail", "stall")
            # delivered = exactly the chunks scheduled before the fault
            assert result.delivered[eid] == pytest.approx(
                before_fault.get(eid, 0.0)
            )
            assert result.delivered[eid] < totals[eid]
        for eid, total in totals.items():
            if eid not in result.failed:
                assert result.delivered[eid] == pytest.approx(total)

    def test_degraded_steps_slow_the_run(self):
        traffic = traffic_case()
        schedule = build_schedule(SPEC, traffic, "oggp", cache=None)
        degrade_only = FaultSpec(
            seed=31, link_degradation_rate=0.4, link_degradation_factor=0.25
        )
        healthy = simulate_schedule(SPEC, schedule, volume_scale=SPEC.flow_rate)
        degraded = simulate_schedule(
            SPEC, schedule, volume_scale=SPEC.flow_rate,
            faults=degrade_only.plan(),
        )
        assert degraded.degraded_steps, "expected degraded steps at this rate"
        assert degraded.total_time > healthy.total_time
        assert degraded.failed == {}

    def test_deterministic_per_seed(self):
        _, a = self._run(FAULTS)
        _, b = self._run(FAULTS)
        assert a.failed == b.failed
        assert a.degraded_steps == b.degraded_steps
        assert a.total_time == b.total_time


class TestRunRedistributionRecovery:
    def test_recovers_until_everything_lands(self):
        out = run_redistribution(
            SPEC, traffic_case(), "oggp", faults=FAULTS.plan(), retry=RETRY,
            cache=None,
        )
        assert out.rounds > 0
        assert out.undelivered_mbit == 0.0
        assert out.recovery_time > 0.0
        assert out.recovery_time < out.total_time

    def test_fault_free_run_reports_zero_rounds(self):
        out = run_redistribution(SPEC, traffic_case(), "oggp", cache=None)
        assert out.rounds == 0
        assert out.recovery_time == 0.0
        assert out.undelivered_mbit == 0.0

    def test_reproducible(self):
        a = run_redistribution(
            SPEC, traffic_case(), "oggp", faults=FAULTS.plan(), retry=RETRY,
            cache=None,
        )
        b = run_redistribution(
            SPEC, traffic_case(), "oggp", faults=FAULTS.plan(), retry=RETRY,
            cache=None,
        )
        assert (a.rounds, a.total_time, a.num_steps) == (
            b.rounds, b.total_time, b.num_steps
        )

    def test_counters_populated(self):
        with obs.observed() as (registry, _):
            run_redistribution(
                SPEC, traffic_case(), "oggp", faults=FAULTS.plan(),
                retry=RETRY, cache=None,
            )
            snap = registry.snapshot()
        for name in (
            "resilience.faults_injected",
            "resilience.retries.netsim",
            "resilience.recovery_rounds",
            "resilience.recovery_steps",
            "resilience.recovery_overhead_seconds",
        ):
            assert snap.get(name, {}).get("value", 0) > 0, name

    def test_exhausted_budget_reports_undelivered(self):
        out = run_redistribution(
            SPEC,
            traffic_case(),
            "oggp",
            faults=FaultSpec(seed=31, transfer_failure_rate=0.9).plan(),
            retry=RetryPolicy(max_attempts=1),
            cache=None,
        )
        assert out.rounds == 0
        assert out.undelivered_mbit > 0.0

    def test_bruteforce_rejects_faults(self):
        with pytest.raises(ConfigError, match="bruteforce"):
            run_redistribution(
                SPEC, traffic_case(), "bruteforce", rng=0,
                faults=FAULTS.plan(),
            )

    def test_bruteforce_allows_inert_plan(self):
        out = run_redistribution(
            SPEC,
            np.full((10, 10), 40.0),
            "bruteforce",
            rng=0,
            faults=FaultSpec(seed=1).plan(),
        )
        assert out.total_time > 0
