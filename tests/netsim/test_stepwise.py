"""Tests for the barrier-synchronised schedule executor."""

import pytest

from repro.core.oggp import oggp
from repro.core.schedule import Schedule, Step, Transfer
from repro.graph.generators import from_traffic_matrix
from repro.netsim.stepwise import simulate_schedule
from repro.netsim.topology import NetworkSpec
from repro.util.errors import SimulationError


def spec(k: int = 2, setup: float = 0.1) -> NetworkSpec:
    return NetworkSpec(n1=3, n2=3, nic_rate1=10.0, nic_rate2=10.0,
                       backbone_rate=10.0 * k, step_setup=setup)


class TestTiming:
    def test_single_step_time(self):
        # One transfer of 20 Mbit at 10 Mbit/s + 0.1 setup = 2.1 s.
        sched = Schedule([Step([Transfer(0, 0, 0, 20.0)])], k=1, beta=0.1)
        result = simulate_schedule(spec(1), sched)
        assert result.total_time == pytest.approx(2.1)
        assert result.step_durations == [pytest.approx(2.0)]

    def test_steps_are_sequential(self):
        sched = Schedule(
            [
                Step([Transfer(0, 0, 0, 10.0)]),
                Step([Transfer(1, 1, 1, 10.0)]),
            ],
            k=1,
            beta=0.1,
        )
        result = simulate_schedule(spec(1), sched)
        assert result.total_time == pytest.approx(2.2)
        assert result.num_steps == 2
        assert result.setup_total == pytest.approx(0.2)

    def test_step_duration_is_longest_transfer(self):
        sched = Schedule(
            [Step([Transfer(0, 0, 0, 10.0), Transfer(1, 1, 1, 20.0)])],
            k=2,
            beta=0.0,
        )
        result = simulate_schedule(spec(2, setup=0.0), sched)
        assert result.total_time == pytest.approx(2.0)

    def test_disjoint_transfers_full_rate(self):
        # A matching never congests: each flow at min(t1, t2).
        sched = Schedule(
            [Step([Transfer(i, i, i, 10.0) for i in range(3)])],
            k=3,
            beta=0.0,
        )
        network = NetworkSpec(n1=3, n2=3, nic_rate1=10, nic_rate2=10,
                              backbone_rate=30, step_setup=0.0)
        result = simulate_schedule(network, sched)
        assert result.total_time == pytest.approx(1.0)

    def test_oversubscribed_step_simulated_honestly(self):
        # 3 flows but backbone only fits 2 at full rate: fair share 6.66.
        sched = Schedule(
            [Step([Transfer(i, i, i, 10.0) for i in range(3)])],
            k=3,
            beta=0.0,
        )
        network = NetworkSpec(n1=3, n2=3, nic_rate1=10, nic_rate2=10,
                              backbone_rate=20, step_setup=0.0)
        result = simulate_schedule(network, sched)
        assert result.total_time == pytest.approx(10.0 / (20.0 / 3))

    def test_empty_schedule(self):
        result = simulate_schedule(spec(), Schedule([], k=1, beta=0.1))
        assert result.total_time == 0.0
        assert result.num_steps == 0


class TestOptions:
    def test_volume_scale(self):
        sched = Schedule([Step([Transfer(0, 0, 0, 2.0)])], k=1, beta=0.0)
        network = spec(1, setup=0.0)
        base = simulate_schedule(network, sched, volume_scale=1.0)
        scaled = simulate_schedule(network, sched, volume_scale=5.0)
        assert scaled.total_time == pytest.approx(5 * base.total_time)

    def test_rate_jitter_slows_and_is_seeded(self):
        sched = Schedule([Step([Transfer(0, 0, 0, 20.0)])], k=1, beta=0.0)
        network = spec(1, setup=0.0)
        clean = simulate_schedule(network, sched)
        noisy1 = simulate_schedule(network, sched, rng=5, rate_jitter=0.3)
        noisy2 = simulate_schedule(network, sched, rng=5, rate_jitter=0.3)
        assert noisy1.total_time >= clean.total_time
        assert noisy1.total_time == noisy2.total_time

    def test_deterministic_without_jitter(self):
        # The paper observed scheduled runs behave deterministically.
        sched = Schedule([Step([Transfer(0, 0, 0, 20.0)])], k=1, beta=0.1)
        times = {simulate_schedule(spec(1), sched, rng=s).total_time
                 for s in range(5)}
        assert len(times) == 1


class TestValidation:
    def test_out_of_range_transfer(self):
        sched = Schedule([Step([Transfer(0, 9, 0, 1.0)])], k=1, beta=0.0)
        with pytest.raises(SimulationError):
            simulate_schedule(spec(), sched)

    def test_bad_scale(self):
        sched = Schedule([], k=1, beta=0.0)
        with pytest.raises(SimulationError):
            simulate_schedule(spec(), sched, volume_scale=0)

    def test_bad_jitter(self):
        sched = Schedule([], k=1, beta=0.0)
        with pytest.raises(SimulationError):
            simulate_schedule(spec(), sched, rate_jitter=1.0)


class TestEndToEnd:
    def test_oggp_schedule_runs_close_to_its_cost(self):
        network = NetworkSpec.paper_testbed(4, step_setup=0.05)
        import numpy as np

        traffic = np.full((10, 10), 4.0)  # Mbit
        graph = from_traffic_matrix(traffic, speed=network.flow_rate)
        sched = oggp(graph, k=network.k, beta=network.step_setup)
        result = simulate_schedule(network, sched, volume_scale=network.flow_rate)
        # The simulated wall time equals the schedule's cost model
        # (durations in seconds + beta per step).
        assert result.total_time == pytest.approx(sched.cost, rel=1e-6)
