"""Tests for the DES execution of barrier-free schedules."""

import pytest
from hypothesis import given, settings

from repro.core.oggp import oggp
from repro.core.relax import relax_schedule
from repro.core.schedule import Schedule, Step, Transfer
from repro.netsim.async_exec import simulate_relaxed
from tests.conftest import bipartite_graphs


class TestBasics:
    def test_empty(self):
        result = simulate_relaxed(Schedule([], k=1, beta=1.0))
        assert result.makespan == 0.0

    def test_single_chunk(self):
        sched = Schedule([Step([Transfer(0, 0, 0, 5.0)])], k=1, beta=2.0)
        result = simulate_relaxed(sched)
        assert result.makespan == pytest.approx(7.0)

    def test_port_chain_serialises(self):
        sched = Schedule(
            [
                Step([Transfer(0, 0, 0, 3.0)]),
                Step([Transfer(1, 0, 1, 4.0)]),  # same sender
            ],
            k=2, beta=1.0,
        )
        result = simulate_relaxed(sched)
        assert result.makespan == pytest.approx(9.0)

    def test_slot_contention_serialises(self):
        sched = Schedule(
            [
                Step([Transfer(0, 0, 0, 5.0)]),
                Step([Transfer(1, 1, 1, 5.0)]),
                Step([Transfer(2, 2, 2, 5.0)]),
            ],
            k=2, beta=0.0,
        )
        result = simulate_relaxed(sched)
        assert result.makespan == pytest.approx(10.0)


class TestAgainstAnalyticRelaxation:
    @given(bipartite_graphs(max_side=5, max_edges=12))
    @settings(max_examples=60, deadline=None)
    def test_valid_timeline_always(self, g):
        sched = oggp(g, k=3, beta=1.0)
        executed = simulate_relaxed(sched)
        executed.validate(g)

    @given(bipartite_graphs(max_side=5, max_edges=12))
    @settings(max_examples=60, deadline=None)
    def test_agreement_without_slot_contention(self, g):
        # k >= min(n1, n2) means ports are the only constraint, where
        # both semantics coincide.
        k = min(g.num_left, g.num_right)
        sched = oggp(g, k=k, beta=1.0)
        analytic = relax_schedule(sched)
        executed = simulate_relaxed(sched)
        assert executed.makespan == pytest.approx(analytic.makespan)

    @given(bipartite_graphs(max_side=6, max_edges=14))
    @settings(max_examples=40, deadline=None)
    def test_same_ballpark_under_contention(self, g):
        sched = oggp(g, k=2, beta=1.0)
        analytic = relax_schedule(sched)
        executed = simulate_relaxed(sched)
        executed.validate(g)
        # Different slot-assignment orders, same workload: within 2x of
        # each other by construction (both are busy list schedules).
        hi = max(analytic.makespan, executed.makespan)
        lo = min(analytic.makespan, executed.makespan)
        assert hi <= 2 * lo + 1e-9

    def test_deterministic(self):
        from repro.graph.generators import random_bipartite

        g = random_bipartite(3, max_side=5, max_edges=10)
        sched = oggp(g, k=2, beta=0.5)
        a = simulate_relaxed(sched)
        b = simulate_relaxed(sched)
        assert a.makespan == b.makespan
