"""Tests for the max-min fair allocator, with property-based checks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.fairshare import FlowDemand, max_min_fair_rates
from repro.netsim.topology import NetworkSpec
from repro.util.errors import SimulationError


def spec(n1=4, n2=4, t1=10.0, t2=10.0, T=25.0) -> NetworkSpec:
    return NetworkSpec(n1=n1, n2=n2, nic_rate1=t1, nic_rate2=t2,
                       backbone_rate=T)


class TestBasics:
    def test_empty(self):
        assert max_min_fair_rates(spec(), []) == []

    def test_single_flow_gets_min_of_links(self):
        rates = max_min_fair_rates(spec(T=25), [FlowDemand(0, 0)])
        assert rates == [10.0]

    def test_single_flow_backbone_limited(self):
        rates = max_min_fair_rates(spec(T=5), [FlowDemand(0, 0)])
        assert rates == [5.0]

    def test_disjoint_flows_share_backbone(self):
        flows = [FlowDemand(i, i) for i in range(4)]
        rates = max_min_fair_rates(spec(T=25), flows)
        assert rates == pytest.approx([6.25] * 4)

    def test_sender_contention(self):
        flows = [FlowDemand(0, 0), FlowDemand(0, 1)]
        rates = max_min_fair_rates(spec(T=100), flows)
        assert rates == pytest.approx([5.0, 5.0])

    def test_receiver_contention(self):
        flows = [FlowDemand(0, 0), FlowDemand(1, 0)]
        rates = max_min_fair_rates(spec(T=100), flows)
        assert rates == pytest.approx([5.0, 5.0])

    def test_asymmetric_bottlenecks(self):
        # Flow A alone on its sender; flows B, C share one sender.
        flows = [FlowDemand(0, 0), FlowDemand(1, 1), FlowDemand(1, 2)]
        rates = max_min_fair_rates(spec(T=100), flows)
        assert rates == pytest.approx([10.0, 5.0, 5.0])

    def test_out_of_range_rejected(self):
        with pytest.raises(SimulationError):
            max_min_fair_rates(spec(), [FlowDemand(99, 0)])
        with pytest.raises(SimulationError):
            max_min_fair_rates(spec(), [FlowDemand(0, 99)])


@st.composite
def flow_sets(draw):
    n1 = draw(st.integers(1, 5))
    n2 = draw(st.integers(1, 5))
    flows = draw(
        st.lists(
            st.tuples(st.integers(0, n1 - 1), st.integers(0, n2 - 1)),
            min_size=1,
            max_size=12,
        )
    )
    t1 = draw(st.sampled_from([1.0, 5.0, 10.0]))
    t2 = draw(st.sampled_from([1.0, 5.0, 10.0]))
    T = draw(st.sampled_from([2.0, 10.0, 40.0]))
    return (
        spec(n1=n1, n2=n2, t1=t1, t2=t2, T=T),
        [FlowDemand(s, d) for s, d in flows],
    )


class TestMaxMinProperties:
    @given(flow_sets())
    @settings(max_examples=100, deadline=None)
    def test_feasibility(self, case):
        network, flows = case
        rates = max_min_fair_rates(network, flows)
        assert all(r >= 0 for r in rates)
        send = {}
        recv = {}
        for f, r in zip(flows, rates):
            send[f.src] = send.get(f.src, 0.0) + r
            recv[f.dst] = recv.get(f.dst, 0.0) + r
        eps = 1e-6
        assert all(v <= network.nic_rate1 + eps for v in send.values())
        assert all(v <= network.nic_rate2 + eps for v in recv.values())
        assert sum(rates) <= network.backbone_rate + eps

    @given(flow_sets())
    @settings(max_examples=100, deadline=None)
    def test_every_flow_gets_positive_rate(self, case):
        network, flows = case
        rates = max_min_fair_rates(network, flows)
        assert all(r > 0 for r in rates)

    @given(flow_sets())
    @settings(max_examples=100, deadline=None)
    def test_max_min_optimality(self, case):
        """No flow's rate can rise without lowering a smaller-or-equal one.

        Equivalent check: every flow is bottlenecked on some link that is
        saturated and on which it has the maximal rate among members.
        """
        network, flows = case
        rates = max_min_fair_rates(network, flows)
        eps = 1e-6
        links: dict[tuple, tuple[float, list[int]]] = {
            ("b",): (network.backbone_rate, list(range(len(flows)))),
        }
        for i, f in enumerate(flows):
            links.setdefault(("s", f.src), (network.nic_rate1, []))[1].append(i)
            links.setdefault(("r", f.dst), (network.nic_rate2, []))[1].append(i)
        for i in range(len(flows)):
            f = flows[i]
            ok = False
            for key in (("s", f.src), ("r", f.dst), ("b",)):
                cap, members = links[key]
                load = sum(rates[j] for j in members)
                if load >= cap - eps and rates[i] >= max(
                    rates[j] for j in members
                ) - eps:
                    ok = True
                    break
            assert ok, f"flow {i} is not bottlenecked anywhere"

    @given(flow_sets())
    @settings(max_examples=60, deadline=None)
    def test_deterministic(self, case):
        network, flows = case
        assert max_min_fair_rates(network, flows) == max_min_fair_rates(
            network, flows
        )
