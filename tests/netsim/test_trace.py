"""Tests for the bandwidth trace and the trace-aware executor."""

import pytest

from repro.core.oggp import oggp
from repro.core.schedule import Schedule, Step, Transfer
from repro.graph.generators import from_traffic_matrix
from repro.netsim.fairshare import FlowDemand
from repro.netsim.stepwise import simulate_schedule
from repro.netsim.topology import NetworkSpec
from repro.netsim.trace import (
    BandwidthTrace,
    advance_transfers,
    simulate_schedule_trace,
)
from repro.util.errors import ConfigError


def spec(k: int = 2, setup: float = 0.0) -> NetworkSpec:
    return NetworkSpec(n1=4, n2=4, nic_rate1=10.0, nic_rate2=10.0,
                       backbone_rate=10.0 * k, step_setup=setup)


class TestBandwidthTrace:
    def test_rate_lookup(self):
        trace = BandwidthTrace.from_pairs([(0, 100.0), (5, 50.0), (9, 75.0)])
        assert trace.rate_at(0) == 100.0
        assert trace.rate_at(4.999) == 100.0
        assert trace.rate_at(5) == 50.0
        assert trace.rate_at(100) == 75.0

    def test_next_change(self):
        trace = BandwidthTrace.from_pairs([(0, 100.0), (5, 50.0)])
        assert trace.next_change(0) == 5.0
        assert trace.next_change(5) is None

    def test_constant(self):
        trace = BandwidthTrace.constant(42.0)
        assert trace.rate_at(17) == 42.0
        assert trace.next_change(0) is None

    def test_k_at_follows_capacity(self):
        platform = spec()
        trace = BandwidthTrace.from_pairs([(0, 40.0), (3, 10.0)])
        assert trace.k_at(platform, 0) == 4
        assert trace.k_at(platform, 3) == 1

    def test_validation(self):
        with pytest.raises(ConfigError):
            BandwidthTrace((1.0,), (10.0,))  # must start at 0
        with pytest.raises(ConfigError):
            BandwidthTrace((0.0, 0.0), (1.0, 2.0))  # not increasing
        with pytest.raises(ConfigError):
            BandwidthTrace((0.0,), (0.0,))  # zero rate
        with pytest.raises(ConfigError):
            BandwidthTrace.constant(5.0).rate_at(-1)


class TestSimulateScheduleTrace:
    def test_constant_trace_matches_static_executor(self):
        platform = NetworkSpec.paper_testbed(3, step_setup=0.05)
        import numpy as np

        traffic = np.full((10, 10), 2.0)
        graph = from_traffic_matrix(traffic, speed=platform.flow_rate)
        sched = oggp(graph, k=3, beta=platform.step_setup)
        static = simulate_schedule(platform, sched,
                                   volume_scale=platform.flow_rate)
        traced = simulate_schedule_trace(
            platform, sched, BandwidthTrace.constant(platform.backbone_rate),
            volume_scale=platform.flow_rate,
        )
        assert traced.total_time == pytest.approx(static.total_time, rel=1e-9)

    def test_capacity_dip_slows_step(self):
        platform = spec(k=2)
        # One step, two flows of 10 volume each at rate 10 -> 1s flat.
        sched = Schedule(
            [Step([Transfer(0, 0, 0, 10.0), Transfer(1, 1, 1, 10.0)])],
            k=2, beta=0.0,
        )
        flat = simulate_schedule_trace(
            platform, sched, BandwidthTrace.constant(20.0)
        )
        assert flat.total_time == pytest.approx(1.0)
        dipped = simulate_schedule_trace(
            platform, sched,
            BandwidthTrace.from_pairs([(0, 20.0), (0.5, 10.0)]),
        )
        # First half at full rate (5 left each), second half both flows
        # share 10 -> each at 5 -> 1 more second. Total 1.5 s.
        assert dipped.total_time == pytest.approx(1.5)

    def test_congestion_penalty_slows_oversubscription(self):
        platform = spec(k=2)
        sched = Schedule(
            [Step([Transfer(0, 0, 0, 10.0), Transfer(1, 1, 1, 10.0)])],
            k=2, beta=0.0,
        )
        trace = BandwidthTrace.constant(10.0)  # demand 20 > 10
        ideal = simulate_schedule_trace(platform, sched, trace)
        penalised = simulate_schedule_trace(
            platform, sched, trace, congestion_penalty=1.0
        )
        assert penalised.total_time > ideal.total_time
        # overload 2 -> drop 0.5 -> goodput 1/1.5.
        assert penalised.total_time == pytest.approx(ideal.total_time * 1.5)

    def test_penalty_noop_when_under_capacity(self):
        platform = spec(k=2)
        sched = Schedule([Step([Transfer(0, 0, 0, 10.0)])], k=2, beta=0.0)
        trace = BandwidthTrace.constant(50.0)
        a = simulate_schedule_trace(platform, sched, trace)
        b = simulate_schedule_trace(platform, sched, trace,
                                    congestion_penalty=2.0)
        assert a.total_time == pytest.approx(b.total_time)


class TestAdvanceTransfers:
    def test_stop_at_change(self):
        platform = spec(k=2)
        flows = [FlowDemand(0, 0)]
        trace = BandwidthTrace.from_pairs([(0, 20.0), (0.5, 10.0)])
        now, shipped, done = advance_transfers(
            platform, flows, [10.0], trace, 0.0, stop_at_change=True
        )
        assert not done
        assert now == pytest.approx(0.5)
        assert shipped[0] == pytest.approx(5.0)  # 0.5s at rate 10 (NIC cap)

    def test_runs_to_completion_without_stop(self):
        platform = spec(k=2)
        flows = [FlowDemand(0, 0)]
        trace = BandwidthTrace.from_pairs([(0, 20.0), (0.5, 10.0)])
        now, shipped, done = advance_transfers(
            platform, flows, [10.0], trace, 0.0, stop_at_change=False
        )
        assert done
        assert shipped[0] == pytest.approx(10.0)
        assert now == pytest.approx(1.0)

    def test_exact_shipping_accounting(self):
        platform = spec(k=4)
        flows = [FlowDemand(i, i) for i in range(3)]
        volumes = [3.0, 7.0, 11.0]
        trace = BandwidthTrace.constant(100.0)
        _, shipped, done = advance_transfers(
            platform, flows, volumes, trace, 0.0
        )
        assert done
        assert shipped == pytest.approx(volumes)
