"""Edge cases and failure injection for the fluid TCP model."""

import numpy as np
import pytest

from repro.netsim.tcp import TcpParams, simulate_bruteforce
from repro.netsim.topology import NetworkSpec


def small_spec() -> NetworkSpec:
    return NetworkSpec(n1=3, n2=3, nic_rate1=20.0, nic_rate2=20.0,
                       backbone_rate=40.0)


class TestEdgeCases:
    def test_single_tiny_message(self):
        # One message far below an MSS still completes.
        traffic = np.zeros((3, 3))
        traffic[0, 0] = 1e-4  # Mbit
        result = simulate_bruteforce(small_spec(), traffic, rng=0,
                                     params=TcpParams(dt=0.001))
        assert result.total_time > 0
        assert result.completion_times[0] == result.total_time

    def test_extremely_skewed_sizes(self):
        traffic = np.zeros((3, 3))
        traffic[0, 0] = 100.0
        traffic[1, 1] = 0.01
        result = simulate_bruteforce(small_spec(), traffic, rng=0,
                                     params=TcpParams(dt=0.005))
        # The tiny flow finishes long before the big one.
        small_done = result.completion_times[1]
        big_done = result.completion_times[0]
        assert small_done < big_done

    def test_dt_larger_than_rtt_still_terminates(self):
        # Degenerate discretisation: dynamics coarse but no hang.
        traffic = np.full((3, 3), 2.0)
        params = TcpParams(dt=0.05, rtt_base=0.002)
        result = simulate_bruteforce(small_spec(), traffic, rng=0,
                                     params=params)
        assert np.isfinite(result.total_time)

    def test_zero_jitter_is_deterministic_modulo_loss_draws(self):
        traffic = np.full((3, 3), 2.0)
        params = TcpParams(rtt_jitter=0.0, dt=0.005)
        a = simulate_bruteforce(small_spec(), traffic, rng=5, params=params)
        b = simulate_bruteforce(small_spec(), traffic, rng=5, params=params)
        assert a.total_time == b.total_time

    def test_huge_rto_stalls_but_completes(self):
        traffic = np.full((3, 3), 1.0)
        params = TcpParams(rto=5.0, dt=0.005)
        result = simulate_bruteforce(small_spec(), traffic, rng=0,
                                     params=params)
        assert np.isfinite(result.total_time)

    def test_asymmetric_clusters(self):
        spec = NetworkSpec(n1=5, n2=2, nic_rate1=10.0, nic_rate2=30.0,
                           backbone_rate=60.0)
        traffic = np.full((5, 2), 3.0)
        result = simulate_bruteforce(spec, traffic, rng=0,
                                     params=TcpParams(dt=0.005))
        assert len(result.flows) == 10
        assert result.total_time >= traffic.sum() / 60.0
