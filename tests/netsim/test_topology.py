"""Tests for the NetworkSpec platform description."""

import pytest

from repro.netsim.topology import MBIT_PER_MB, NetworkSpec
from repro.util.errors import ConfigError


class TestDerivations:
    def test_symmetric_shaped_testbed(self):
        spec = NetworkSpec.paper_testbed(4)
        assert spec.k == 4
        assert spec.flow_rate == pytest.approx(25.0)

    def test_float_division_artifacts(self):
        # 100 / (100/3) must give k = 3, not 2.
        for k in range(1, 11):
            assert NetworkSpec.paper_testbed(k).k == k

    def test_asymmetric_nics(self):
        spec = NetworkSpec(n1=200, n2=100, nic_rate1=10, nic_rate2=100,
                           backbone_rate=1000)
        assert spec.k == 100
        assert spec.flow_rate == 10

    def test_k_capped_by_cluster_sizes(self):
        spec = NetworkSpec(n1=2, n2=5, nic_rate1=1, nic_rate2=1,
                           backbone_rate=1000)
        assert spec.k == 2

    def test_k_at_least_one(self):
        # Backbone slower than a single NIC still allows one flow.
        spec = NetworkSpec(n1=3, n2=3, nic_rate1=100, nic_rate2=100,
                           backbone_rate=10)
        assert spec.k == 1

    def test_with_setup(self):
        spec = NetworkSpec.paper_testbed(3).with_setup(0.5)
        assert spec.step_setup == 0.5
        assert spec.k == 3

    def test_mbit_constant(self):
        assert MBIT_PER_MB == 8.0


class TestValidation:
    def test_bad_sizes(self):
        with pytest.raises(ConfigError):
            NetworkSpec(n1=0, n2=1, nic_rate1=1, nic_rate2=1, backbone_rate=1)

    def test_bad_rates(self):
        with pytest.raises(ConfigError):
            NetworkSpec(n1=1, n2=1, nic_rate1=0, nic_rate2=1, backbone_rate=1)

    def test_bad_setup(self):
        with pytest.raises(ConfigError):
            NetworkSpec(n1=1, n2=1, nic_rate1=1, nic_rate2=1,
                        backbone_rate=1, step_setup=-0.1)

    def test_bad_testbed_k(self):
        with pytest.raises(ConfigError):
            NetworkSpec.paper_testbed(0)
