"""Additional edge cases for the stepwise executor."""

import pytest

from repro.core.schedule import Schedule, Step, Transfer
from repro.netsim.stepwise import simulate_schedule
from repro.netsim.topology import NetworkSpec


def spec(n1=3, n2=3, setup=0.1) -> NetworkSpec:
    return NetworkSpec(n1=n1, n2=n2, nic_rate1=10.0, nic_rate2=10.0,
                       backbone_rate=30.0, step_setup=setup)


class TestStepwiseEdgeCases:
    def test_sender_without_work_still_barriers(self):
        # Only sender 0 transmits; senders 1, 2 just synchronise.
        sched = Schedule([Step([Transfer(0, 0, 0, 10.0)])], k=1, beta=0.1)
        result = simulate_schedule(spec(), sched)
        assert result.total_time == pytest.approx(1.1)

    def test_many_steps_accumulate_setup(self):
        # The executor charges the *platform's* step_setup per step.
        steps = [Step([Transfer(i, 0, 0, 1.0)]) for i in range(20)]
        sched = Schedule(steps, k=1, beta=0.5)
        result = simulate_schedule(spec(setup=0.5), sched)
        assert result.setup_total == pytest.approx(10.0)
        assert result.total_time == pytest.approx(20 * (0.5 + 0.1))

    def test_step_durations_reported_per_step(self):
        sched = Schedule(
            [
                Step([Transfer(0, 0, 0, 20.0)]),
                Step([Transfer(1, 1, 1, 10.0)]),
            ],
            k=1, beta=0.0,
        )
        result = simulate_schedule(spec(setup=0.0), sched)
        assert result.step_durations == [pytest.approx(2.0), pytest.approx(1.0)]

    def test_asymmetric_receiver_rate_binds(self):
        platform = NetworkSpec(n1=2, n2=2, nic_rate1=10.0, nic_rate2=5.0,
                               backbone_rate=100.0, step_setup=0.0)
        sched = Schedule([Step([Transfer(0, 0, 0, 10.0)])], k=2, beta=0.0)
        result = simulate_schedule(platform, sched)
        assert result.total_time == pytest.approx(2.0)  # 10 / min(10, 5)

    def test_single_node_clusters(self):
        platform = NetworkSpec(n1=1, n2=1, nic_rate1=10.0, nic_rate2=10.0,
                               backbone_rate=10.0, step_setup=0.2)
        sched = Schedule(
            [Step([Transfer(0, 0, 0, 5.0)]), Step([Transfer(1, 0, 0, 5.0)])],
            k=1, beta=0.2,
        )
        result = simulate_schedule(platform, sched)
        assert result.total_time == pytest.approx(2 * (0.2 + 0.5))
