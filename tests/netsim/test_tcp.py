"""Tests for the fluid TCP brute-force model."""

import numpy as np
import pytest

from repro.netsim.tcp import TcpParams, simulate_bruteforce
from repro.netsim.topology import NetworkSpec
from repro.util.errors import ConfigError, SimulationError

FAST = TcpParams(dt=0.005)


def spec(k: int = 3) -> NetworkSpec:
    return NetworkSpec.paper_testbed(k)


class TestBasics:
    def test_empty_traffic(self):
        result = simulate_bruteforce(spec(), np.zeros((10, 10)), rng=0)
        assert result.total_time == 0.0
        assert result.flows == []

    def test_single_flow_time_close_to_ideal(self):
        traffic = np.zeros((10, 10))
        traffic[0, 0] = 100.0  # Mbit
        result = simulate_bruteforce(spec(3), traffic, rng=0, params=FAST)
        ideal = 100.0 / (100.0 / 3)  # NIC-limited: 3 s
        assert ideal <= result.total_time <= ideal * 1.5

    def test_all_volume_delivered(self):
        rng = np.random.default_rng(0)
        traffic = rng.uniform(1, 10, size=(10, 10))
        result = simulate_bruteforce(spec(3), traffic, rng=1, params=FAST)
        assert result.volume_mbit == pytest.approx(traffic.sum())
        assert np.isfinite(result.completion_times).all()
        assert len(result.flows) == 100

    def test_completion_below_total_time(self):
        traffic = np.full((10, 10), 5.0)
        result = simulate_bruteforce(spec(3), traffic, rng=2, params=FAST)
        assert result.total_time == pytest.approx(
            float(np.max(result.completion_times))
        )

    def test_cannot_beat_capacity(self):
        traffic = np.full((10, 10), 10.0)  # 1000 Mbit total
        result = simulate_bruteforce(spec(3), traffic, rng=3, params=FAST)
        assert result.total_time >= traffic.sum() / 100.0  # backbone floor
        assert result.goodput_efficiency <= 1.0

    def test_oversubscription_wastes_goodput(self):
        traffic = np.full((10, 10), 20.0)
        result = simulate_bruteforce(spec(5), traffic, rng=4, params=FAST)
        assert result.goodput_efficiency < 0.99

    def test_seed_reproducibility(self):
        traffic = np.full((10, 10), 5.0)
        a = simulate_bruteforce(spec(3), traffic, rng=7, params=FAST)
        b = simulate_bruteforce(spec(3), traffic, rng=7, params=FAST)
        assert a.total_time == b.total_time

    def test_seeds_differ(self):
        traffic = np.full((10, 10), 5.0)
        a = simulate_bruteforce(spec(3), traffic, rng=7, params=FAST)
        b = simulate_bruteforce(spec(3), traffic, rng=8, params=FAST)
        assert a.total_time != b.total_time


class TestScaling:
    def test_more_volume_takes_longer(self):
        small = np.full((10, 10), 2.0)
        result_small = simulate_bruteforce(spec(3), small, rng=0, params=FAST)
        result_big = simulate_bruteforce(spec(3), small * 3, rng=0, params=FAST)
        assert result_big.total_time > result_small.total_time

    def test_waste_grows_with_k(self):
        traffic = np.full((10, 10), 8.0)
        eff = [
            simulate_bruteforce(spec(k), traffic, rng=1, params=FAST).goodput_efficiency
            for k in (3, 7)
        ]
        assert eff[1] < eff[0] + 0.02  # k=7 no better than k=3 (usually worse)


class TestValidation:
    def test_wrong_shape(self):
        with pytest.raises(SimulationError):
            simulate_bruteforce(spec(), np.zeros((3, 3)), rng=0)

    def test_negative_volume(self):
        bad = np.zeros((10, 10))
        bad[0, 0] = -1
        with pytest.raises(SimulationError):
            simulate_bruteforce(spec(), bad, rng=0)

    def test_max_time_guard(self):
        traffic = np.zeros((10, 10))
        traffic[0, 0] = 1000.0
        params = TcpParams(dt=0.005, max_time=0.5)
        with pytest.raises(SimulationError, match="max_time"):
            simulate_bruteforce(spec(3), traffic, rng=0, params=params)

    def test_bad_params(self):
        with pytest.raises(ConfigError):
            TcpParams(dt=0)
        with pytest.raises(ConfigError):
            TcpParams(rtt_jitter=1.5)
        with pytest.raises(ConfigError):
            TcpParams(rto=0)
