"""Tests for the end-to-end redistribution runner (Figs 10/11 machinery)."""

import numpy as np
import pytest

from repro.netsim.runner import (
    build_schedule,
    run_redistribution,
    uniform_traffic,
)
from repro.netsim.tcp import TcpParams
from repro.netsim.topology import NetworkSpec
from repro.util.errors import ConfigError

FAST = TcpParams(dt=0.005)


class TestUniformTraffic:
    def test_units_are_mbit(self):
        m = uniform_traffic(0, 2, 2, 10.0, 10.0)
        assert np.allclose(m, 80.0)  # 10 MB = 80 Mbit

    def test_bounds(self):
        m = uniform_traffic(1, 5, 5, 10.0, 30.0)
        assert (m >= 80.0).all() and (m <= 240.0).all()

    def test_seeded(self):
        assert np.array_equal(uniform_traffic(3, 4, 4, 1, 2),
                              uniform_traffic(3, 4, 4, 1, 2))

    def test_invalid_range(self):
        with pytest.raises(ConfigError):
            uniform_traffic(0, 2, 2, 5.0, 1.0)


class TestBuildSchedule:
    def test_schedule_valid_for_platform(self):
        spec = NetworkSpec.paper_testbed(3, step_setup=0.01)
        traffic = uniform_traffic(0, 10, 10, 1.0, 2.0)
        for method in ("ggp", "oggp"):
            sched = build_schedule(spec, traffic, method)
            assert sched.k == 3
            assert sched.beta == 0.01
            assert sched.max_step_size <= 3


class TestBuildScheduleEngines:
    def test_vector_engine_bit_identical(self):
        spec = NetworkSpec.paper_testbed(3, step_setup=0.01)
        traffic = uniform_traffic(0, 10, 10, 1.0, 2.0)
        fast = build_schedule(spec, traffic, "oggp", cache=None)
        vec = build_schedule(spec, traffic, "oggp", cache=None, engine="vector")
        assert vec.to_dict() == fast.to_dict()

    def test_approx_engine_schedules_full_volume(self):
        spec = NetworkSpec.paper_testbed(3, step_setup=0.01)
        traffic = uniform_traffic(0, 10, 10, 1.0, 2.0)
        sched = build_schedule(spec, traffic, "oggp", cache=None, engine="approx")
        assert sched.k == 3
        assert sched.max_step_size <= 3

    def test_run_redistribution_accepts_engine(self):
        spec = NetworkSpec.paper_testbed(3, step_setup=0.01)
        traffic = uniform_traffic(0, 6, 6, 1.0, 2.0)
        outcome = run_redistribution(
            spec, traffic, "oggp", cache=None, engine="vector"
        )
        assert outcome.undelivered_mbit == 0.0


class TestRunRedistribution:
    def test_scheduled_beats_brute_force_at_scale(self):
        spec = NetworkSpec.paper_testbed(5, step_setup=0.01)
        traffic = uniform_traffic(42, 10, 10, 4.0, 10.0)
        brute = run_redistribution(spec, traffic, "bruteforce", rng=1,
                                   tcp_params=FAST)
        for method in ("ggp", "oggp"):
            out = run_redistribution(spec, traffic, method)
            assert out.total_time < brute.total_time
            assert out.schedule is not None
            assert out.num_steps == out.schedule.num_steps

    def test_scheduled_deterministic_brute_not(self):
        spec = NetworkSpec.paper_testbed(3, step_setup=0.01)
        traffic = uniform_traffic(5, 10, 10, 1.0, 3.0)
        sched_times = {
            run_redistribution(spec, traffic, "oggp", rng=s).total_time
            for s in range(3)
        }
        assert len(sched_times) == 1
        brute_times = {
            run_redistribution(spec, traffic, "bruteforce", rng=s,
                               tcp_params=FAST).total_time
            for s in range(3)
        }
        assert len(brute_times) == 3

    def test_volume_reported(self):
        spec = NetworkSpec.paper_testbed(3)
        traffic = uniform_traffic(2, 10, 10, 1.0, 1.0)
        out = run_redistribution(spec, traffic, "ggp")
        assert out.volume_mbit == pytest.approx(traffic.sum())

    def test_unknown_method(self):
        spec = NetworkSpec.paper_testbed(3)
        with pytest.raises(ConfigError):
            run_redistribution(spec, np.ones((10, 10)), "magic")  # type: ignore[arg-type]


class TestCheckpointedRedistribution:
    spec = NetworkSpec(n1=4, n2=4, nic_rate1=100.0, nic_rate2=100.0,
                       backbone_rate=100.0)

    def traffic(self):
        rng = np.random.default_rng(7)
        return rng.uniform(1, 50, size=(4, 4)) * (rng.random((4, 4)) < 0.8)

    def faults(self):
        from repro.resilience import FaultSpec

        return FaultSpec(seed=3, transfer_failure_rate=0.3).plan()

    def test_checkpoint_records_delivered_mbit(self, tmp_path):
        from repro.resilience import load_checkpoint

        traffic = self.traffic()
        out = run_redistribution(
            self.spec, traffic, "oggp", rng=1, faults=self.faults(),
            checkpoint=tmp_path,
        )
        assert out.undelivered_mbit == 0.0
        state = load_checkpoint(tmp_path)
        assert state.complete
        assert state.meta.amount_kind == "float"
        assert state.meta.extra["engine"] == "netsim"
        assert state.meta.extra["shape"] == [4, 4]
        assert sum(state.delivered.values()) == pytest.approx(traffic.sum())

    def test_resume_finishes_partial_run(self, tmp_path):
        from repro.netsim.runner import resume_redistribution
        from repro.resilience import RetryPolicy, load_checkpoint

        traffic = self.traffic()
        short = RetryPolicy(max_attempts=1, backoff_base=0.0, jitter=0.0)
        partial = run_redistribution(
            self.spec, traffic, "oggp", rng=1, faults=self.faults(),
            retry=short, checkpoint=tmp_path,
        )
        assert partial.undelivered_mbit > 0
        assert load_checkpoint(tmp_path).next_round == 1
        out = resume_redistribution(
            self.spec, tmp_path, rng=1, faults=self.faults()
        )
        assert out.undelivered_mbit == 0.0
        assert out.volume_mbit == pytest.approx(traffic.sum())
        state = load_checkpoint(tmp_path)
        assert state.complete
        assert sum(state.delivered.values()) == pytest.approx(traffic.sum())

    def test_resume_of_complete_run_is_a_noop(self, tmp_path):
        from repro.netsim.runner import resume_redistribution

        run_redistribution(
            self.spec, self.traffic(), "oggp", rng=1, checkpoint=tmp_path
        )
        out = resume_redistribution(self.spec, tmp_path)
        assert out.num_steps == 0
        assert out.total_time == 0.0
        assert out.undelivered_mbit == 0.0

    def test_bruteforce_rejects_checkpoint(self, tmp_path):
        with pytest.raises(ConfigError, match="bruteforce"):
            run_redistribution(
                self.spec, self.traffic(), "bruteforce", checkpoint=tmp_path
            )

    def test_resume_rejects_platform_mismatch(self, tmp_path):
        from repro.netsim.runner import resume_redistribution

        run_redistribution(
            self.spec, self.traffic(), "oggp", rng=1, checkpoint=tmp_path
        )
        other = NetworkSpec(n1=4, n2=4, nic_rate1=100.0, nic_rate2=100.0,
                            backbone_rate=100.0, step_setup=0.5)
        assert other.step_setup != self.spec.step_setup
        with pytest.raises(ConfigError, match="mismatch"):
            resume_redistribution(other, tmp_path)

    def test_resume_rejects_foreign_checkpoint(self, tmp_path):
        from repro.netsim.runner import resume_redistribution
        from repro.resilience import CheckpointStore, RunMeta

        with CheckpointStore(tmp_path) as store:
            store.begin(RunMeta(
                edges={0: (0, 0, 100)}, k=self.spec.k,
                beta=self.spec.step_setup, method="oggp",
                extra={"engine": "runtime"},
            ))
        with pytest.raises(ConfigError, match="engine"):
            resume_redistribution(self.spec, tmp_path)
