"""Tests for the packet-level simulator, incl. fluid-model cross-checks."""

import numpy as np
import pytest

from repro.netsim.packetsim import (
    PacketSimParams,
    PacketSimResult,
    simulate_packet_bruteforce,
)
from repro.netsim.tcp import TcpParams, simulate_bruteforce
from repro.netsim.topology import NetworkSpec
from repro.util.errors import ConfigError, SimulationError


class TestBasics:
    def test_empty_traffic(self):
        spec = NetworkSpec.paper_testbed(3)
        result = simulate_packet_bruteforce(spec, np.zeros((10, 10)), rng=0)
        assert result.total_time == 0.0
        assert result.sent_segments == 0

    def test_single_uncontended_flow_near_ideal(self):
        spec = NetworkSpec.paper_testbed(3)
        traffic = np.zeros((10, 10))
        traffic[0, 0] = 10.0  # Mbit
        result = simulate_packet_bruteforce(spec, traffic, rng=0)
        ideal = 10.0 / spec.flow_rate
        assert ideal <= result.total_time <= ideal * 1.3
        assert result.dropped_segments == 0

    def test_all_segments_eventually_delivered(self):
        spec = NetworkSpec(n1=4, n2=4, nic_rate1=25.0, nic_rate2=25.0,
                           backbone_rate=100.0)
        traffic = np.full((4, 4), 4.0)
        result = simulate_packet_bruteforce(spec, traffic, rng=1)
        seg_mbit = PacketSimParams().segment_bits / 1e6
        expected = sum(
            max(1, int(np.ceil(v / seg_mbit))) for v in traffic.ravel()
        )
        assert result.delivered_segments == expected
        assert np.isfinite(result.completion_times).all()

    def test_seeded_reproducibility(self):
        spec = NetworkSpec(n1=4, n2=4, nic_rate1=25.0, nic_rate2=25.0,
                           backbone_rate=100.0)
        traffic = np.full((4, 4), 4.0)
        a = simulate_packet_bruteforce(spec, traffic, rng=3)
        b = simulate_packet_bruteforce(spec, traffic, rng=3)
        assert a.total_time == b.total_time
        assert a.dropped_segments == b.dropped_segments

    def test_wrong_shape(self):
        with pytest.raises(SimulationError):
            simulate_packet_bruteforce(
                NetworkSpec.paper_testbed(3), np.zeros((2, 2)), rng=0
            )

    def test_param_validation(self):
        with pytest.raises(ConfigError):
            PacketSimParams(segment_bits=0)
        with pytest.raises(ConfigError):
            PacketSimParams(switch_buffer=0)
        with pytest.raises(ConfigError):
            PacketSimParams(rto=0)

    def test_max_time_guard(self):
        spec = NetworkSpec.paper_testbed(3)
        traffic = np.full((10, 10), 10.0)
        with pytest.raises(SimulationError, match="max_time"):
            simulate_packet_bruteforce(
                spec, traffic, rng=0, params=PacketSimParams(max_time=0.1)
            )

    def test_drop_rate_property(self):
        r = PacketSimResult(1.0, np.ones(1), 100, 90, 10, 0.9)
        assert r.drop_rate == pytest.approx(0.1)


class TestCongestionBehaviour:
    def test_oversubscription_wastes_goodput(self):
        spec = NetworkSpec.paper_testbed(5)
        traffic = np.full((10, 10), 8.0)
        result = simulate_packet_bruteforce(spec, traffic, rng=1)
        assert result.goodput_efficiency < 0.95
        assert result.dropped_segments > 0

    def test_stragglers_exist(self):
        spec = NetworkSpec.paper_testbed(5)
        traffic = np.full((10, 10), 8.0)
        result = simulate_packet_bruteforce(spec, traffic, rng=1)
        spread = result.completion_times.max() - result.completion_times.min()
        assert spread > 0.1 * result.total_time


class TestCrossValidation:
    """The packet and fluid models must agree on the headline claims.

    They share no code beyond the topology, so agreement here is real
    evidence that the Figures 10/11 comparison isn't a fluid-model
    artifact.
    """

    @pytest.fixture(scope="class")
    def results(self):
        out = {}
        for k in (3, 7):
            spec = NetworkSpec.paper_testbed(k)
            traffic = np.full((10, 10), 12.0)
            out[("packet", k)] = simulate_packet_bruteforce(
                spec, traffic, rng=1
            )
            out[("fluid", k)] = simulate_bruteforce(
                spec, traffic, rng=1, params=TcpParams(dt=0.005)
            )
        return out

    def test_both_models_waste_goodput(self, results):
        for key, result in results.items():
            assert result.goodput_efficiency < 0.999, key

    def test_waste_grows_with_k_in_both(self, results):
        assert (
            results[("packet", 7)].goodput_efficiency
            < results[("packet", 3)].goodput_efficiency + 0.02
        )
        assert (
            results[("fluid", 7)].goodput_efficiency
            < results[("fluid", 3)].goodput_efficiency + 0.02
        )

    def test_neither_model_beats_capacity(self, results):
        for k in (3, 7):
            ideal = 1200.0 / 100.0  # volume / backbone
            assert results[("packet", k)].total_time >= ideal
            assert results[("fluid", k)].total_time >= ideal
