"""KPBR framing: round-trips, and every way a frame can be malformed."""

import io
import struct
import zlib

import pytest

from repro.serve.protocol import (
    DEFAULT_MAX_PAYLOAD,
    FRAME_ERROR,
    FRAME_REQUEST,
    FRAME_RESPONSE,
    KPBR_MAGIC,
    ProtocolError,
    decode_frame,
    encode_frame,
    error_response,
    ok_response,
    recv_frame,
    retry_response,
    send_frame,
)


class TestRoundTrip:
    def test_doc_only(self):
        frame = encode_frame(FRAME_REQUEST, {"op": "ping", "n": 3})
        ftype, doc, blob = decode_frame(frame)
        assert ftype == FRAME_REQUEST
        assert doc == {"op": "ping", "n": 3}
        assert blob == b""

    def test_doc_and_blob(self):
        payload = bytes(range(256)) * 11
        frame = encode_frame(FRAME_RESPONSE, {"ok": True}, payload)
        ftype, doc, blob = decode_frame(frame)
        assert ftype == FRAME_RESPONSE
        assert doc == {"ok": True}
        assert blob == payload

    def test_unicode_doc(self):
        frame = encode_frame(FRAME_ERROR, {"detail": "héllo ✓"})
        _, doc, _ = decode_frame(frame)
        assert doc["detail"] == "héllo ✓"

    def test_empty_doc(self):
        _, doc, _ = decode_frame(encode_frame(FRAME_REQUEST, {}))
        assert doc == {}

    def test_sync_stream_round_trip(self):
        stream = io.BytesIO()
        send_frame(stream, FRAME_REQUEST, {"op": "a"}, b"xy")
        send_frame(stream, FRAME_REQUEST, {"op": "b"})
        stream.seek(0)
        assert recv_frame(stream)[1]["op"] == "a"
        assert recv_frame(stream)[1]["op"] == "b"
        assert recv_frame(stream) is None  # clean EOF at a boundary

    def test_bad_frame_type_rejected_at_encode(self):
        with pytest.raises(ProtocolError, match="frame type"):
            encode_frame(42, {})


class TestMalformedFrames:
    def frame(self) -> bytearray:
        return bytearray(encode_frame(FRAME_REQUEST, {"op": "x"}, b"blob"))

    def test_bad_magic(self):
        frame = self.frame()
        frame[:4] = b"NOPE"
        with pytest.raises(ProtocolError, match="magic"):
            decode_frame(bytes(frame))

    def test_bad_version(self):
        frame = self.frame()
        frame[4] = 99
        with pytest.raises(ProtocolError, match="version"):
            decode_frame(bytes(frame))

    def test_bad_frame_type(self):
        frame = self.frame()
        frame[5] = 77
        # Type is validated before the CRC so the error names the type.
        with pytest.raises(ProtocolError, match="frame type"):
            decode_frame(bytes(frame))

    def test_flipped_payload_bit_fails_crc(self):
        frame = self.frame()
        frame[-1] ^= 0x01
        with pytest.raises(ProtocolError, match="CRC"):
            decode_frame(bytes(frame))

    def test_flipped_header_bit_fails_crc(self):
        frame = self.frame()
        frame[12] ^= 0x01  # json length field: caught by length/CRC check
        with pytest.raises(ProtocolError):
            decode_frame(bytes(frame))

    def test_truncated_header(self):
        with pytest.raises(ProtocolError, match="truncated"):
            decode_frame(self.frame()[:10])

    def test_truncated_payload(self):
        with pytest.raises(ProtocolError, match="truncated"):
            decode_frame(bytes(self.frame()[:-2]))

    def test_oversized_payload_rejected_before_read(self):
        # Craft a header promising more than the cap; the length check
        # must fire without trusting (or allocating) the payload.
        header = struct.Struct("<4sBBxxIII").pack(
            KPBR_MAGIC, 1, FRAME_REQUEST, 0, DEFAULT_MAX_PAYLOAD, 1
        )
        with pytest.raises(ProtocolError, match="exceeds"):
            decode_frame(header)

    def test_invalid_json_payload(self):
        bad = b"not json"
        header = bytearray(
            struct.Struct("<4sBBxxIII").pack(
                KPBR_MAGIC, 1, FRAME_REQUEST, 0, len(bad), 0
            )
        )
        crc = zlib.crc32(bytes(header) + bad) & 0xFFFFFFFF
        struct.pack_into("<I", header, 8, crc)
        with pytest.raises(ProtocolError, match="JSON"):
            decode_frame(bytes(header) + bad)

    def test_non_object_json_rejected(self):
        doc_bytes = b"[1,2]"
        header = bytearray(
            struct.Struct("<4sBBxxIII").pack(
                KPBR_MAGIC, 1, FRAME_REQUEST, 0, len(doc_bytes), 0
            )
        )
        crc = zlib.crc32(bytes(header) + doc_bytes) & 0xFFFFFFFF
        struct.pack_into("<I", header, 8, crc)
        with pytest.raises(ProtocolError, match="object"):
            decode_frame(bytes(header) + doc_bytes)

    def test_sync_eof_mid_frame(self):
        stream = io.BytesIO(bytes(self.frame()[:-3]))
        with pytest.raises(ProtocolError, match="mid-payload"):
            recv_frame(stream)


class TestAsyncReader:
    def test_clean_eof_returns_none(self):
        import asyncio

        async def run():
            reader = asyncio.StreamReader()
            reader.feed_eof()
            from repro.serve.protocol import read_frame

            return await read_frame(reader)

        assert asyncio.run(run()) is None

    def test_eof_mid_header_raises(self):
        import asyncio

        async def run():
            reader = asyncio.StreamReader()
            reader.feed_data(b"KPBR\x01")
            reader.feed_eof()
            from repro.serve.protocol import read_frame

            return await read_frame(reader)

        with pytest.raises(ProtocolError, match="mid-header"):
            asyncio.run(run())

    def test_slow_loris_read_times_out(self):
        import asyncio

        async def run():
            reader = asyncio.StreamReader()
            reader.feed_data(b"KPBR")  # trickle: header never completes
            from repro.serve.protocol import read_frame

            return await read_frame(reader, timeout=0.05)

        with pytest.raises(ProtocolError, match="timed out"):
            asyncio.run(run())

    def test_frame_round_trip(self):
        import asyncio

        async def run():
            reader = asyncio.StreamReader()
            reader.feed_data(encode_frame(FRAME_RESPONSE, {"a": 1}, b"zz"))
            from repro.serve.protocol import read_frame

            return await read_frame(reader, timeout=1.0)

        ftype, doc, blob = asyncio.run(run())
        assert (ftype, doc, blob) == (FRAME_RESPONSE, {"a": 1}, b"zz")


class TestResponseHelpers:
    def test_ok(self):
        assert ok_response(x=1) == {"status": "ok", "x": 1}

    def test_error(self):
        doc = error_response("BAD_REQUEST", "nope")
        assert doc["status"] == "error"
        assert doc["code"] == "BAD_REQUEST"

    def test_retry_carries_backoff_hint(self):
        doc = retry_response(0.25, "queue full")
        assert doc["status"] == "retry"
        assert doc["code"] == "RETRY_AFTER"
        assert doc["retry_after"] == pytest.approx(0.25)
