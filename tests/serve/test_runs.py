"""RunRegistry: journaled execution, idempotency, crash recovery."""

import json

import pytest

from repro.runtime.seeded import RUN_CONFIG_NAME
from repro.serve.runs import RunActiveError, RunRegistry
from repro.util.errors import ConfigError

PARAMS = {"seed": 5, "n1": 2, "n2": 2, "payload_kb": 4}


@pytest.fixture()
def registry(tmp_path):
    return RunRegistry(tmp_path / "state")


class TestRunIds:
    @pytest.mark.parametrize(
        "bad", ["", "../escape", "a/b", "a b", ".hidden", "x" * 65]
    )
    def test_bad_ids_rejected(self, registry, bad):
        with pytest.raises(ConfigError, match="run_id"):
            registry.run_dir(bad)

    def test_good_ids_accepted(self, registry):
        for good in ("r1", "tenant-a.42", "A_b-c.d"):
            assert registry.run_dir(good).name == good


class TestExecute:
    def test_complete_run_writes_artifacts(self, registry):
        result = registry.execute("r1", PARAMS)
        assert result["complete"] is True
        assert result["state"] == "complete"
        assert len(result["digest"]) == 64
        rdir = registry.run_dir("r1")
        assert (rdir / RUN_CONFIG_NAME).is_file()
        assert (rdir / "journal.kpbj").is_file()
        assert (rdir / "result.json").is_file()

    def test_resubmit_returns_cached_result(self, registry):
        first = registry.execute("r1", PARAMS)
        again = registry.execute("r1", {"seed": 999})  # params ignored
        assert again["cached"] is True
        assert again["digest"] == first["digest"]

    def test_unknown_param_rejected_with_valid_keys(self, registry):
        with pytest.raises(ConfigError, match="valid keys"):
            registry.execute("r1", {"bogus": 1})

    def test_bad_sizes_rejected(self, registry):
        with pytest.raises(ConfigError, match="n1"):
            registry.execute("r1", {**PARAMS, "n1": 0})

    def test_status_lifecycle(self, registry):
        assert registry.status("r1")["state"] == "unknown"
        registry.execute("r1", PARAMS)
        assert registry.status("r1")["state"] == "complete"


class TestCrashRecovery:
    def config_only_run(self, registry, run_id):
        """Simulate a daemon killed after admission, before any byte."""
        rdir = registry.run_dir(run_id)
        rdir.mkdir(parents=True)
        config = {
            "seed": 5, "n1": 2, "n2": 2, "payload_kb": 4.0, "k": 3,
            "beta": 0.0, "method": "oggp", "engine": "fast",
            "nic_mbit": 1000.0, "backbone_mbit": 1000.0,
            "faults": None, "retries": None,
        }
        (rdir / RUN_CONFIG_NAME).write_text(json.dumps(config))

    def test_incomplete_runs_listed(self, registry):
        registry.execute("done", PARAMS)
        self.config_only_run(registry, "crashed")
        assert registry.incomplete_runs() == ["crashed"]

    def test_resume_incomplete_is_bit_identical(self, tmp_path):
        reference = RunRegistry(tmp_path / "ref").execute("r", PARAMS)
        registry = RunRegistry(tmp_path / "state")
        self.config_only_run(registry, "crashed")
        results = registry.resume_incomplete()
        assert len(results) == 1
        assert results[0]["complete"] is True
        # Payloads regenerate from the recorded seed: same digest as an
        # uninterrupted run of the same parameters.
        assert results[0]["digest"] == reference["digest"]

    def test_duplicate_in_process_submission_refused(self, registry):
        # Simulate an in-flight run by occupying the active set.
        registry._active.add("busy")
        with pytest.raises(RunActiveError, match="busy"):
            registry.execute("busy", PARAMS)
