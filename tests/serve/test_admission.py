"""Admission control units: quotas, fair queue, degradation ladder."""

import pytest

from repro.serve.admission import (
    DegradationLadder,
    FairQueue,
    LadderConfig,
    QueueItem,
    TenantQuotas,
)
from repro.util.errors import ConfigError


def item(tenant: str, op: str = "schedule", seq: int = 0) -> QueueItem:
    return QueueItem(
        tenant=tenant, op=op, doc={"seq": seq}, blob=b"",
        future=None, enqueued_at=0.0,
    )


class TestTenantQuotas:
    def test_disabled_always_admits(self):
        quotas = TenantQuotas(None)
        assert all(quotas.admit("t") == 0.0 for _ in range(1000))

    def test_burst_then_shed_with_refill_hint(self):
        quotas = TenantQuotas(rate=10.0, burst=2.0)
        assert quotas.admit("a") == 0.0
        assert quotas.admit("a") == 0.0
        wait = quotas.admit("a")
        assert wait > 0.0
        # The hint is the bucket's own refill time: ~cost/rate.
        assert wait == pytest.approx(0.1, abs=0.05)

    def test_tenants_are_isolated(self):
        quotas = TenantQuotas(rate=10.0, burst=1.0)
        assert quotas.admit("a") == 0.0
        assert quotas.admit("a") > 0.0  # a is out of tokens
        assert quotas.admit("b") == 0.0  # b has its own bucket
        assert quotas.tenants == ["a", "b"]

    def test_bad_rate_rejected(self):
        with pytest.raises(ConfigError, match="rate"):
            TenantQuotas(rate=-1.0)


class TestFairQueue:
    def test_bounded(self):
        q = FairQueue(max_depth=2)
        assert q.push(item("a"))
        assert q.push(item("a"))
        assert not q.push(item("a"))  # full → caller sheds
        assert q.depth == 2
        assert q.full

    def test_fifo_within_tenant(self):
        q = FairQueue(max_depth=10)
        for seq in range(3):
            q.push(item("a", seq=seq))
        assert [q.pop().doc["seq"] for _ in range(3)] == [0, 1, 2]

    def test_round_robin_across_tenants(self):
        q = FairQueue(max_depth=10)
        # Tenant a floods first; b and c each queue one.
        for seq in range(4):
            q.push(item("a", seq=seq))
        q.push(item("b"))
        q.push(item("c"))
        order = [q.pop().tenant for _ in range(6)]
        # b and c are served within the first three pops despite a's
        # head start — one item per tenant per cycle.
        assert set(order[:3]) == {"a", "b", "c"}
        assert order.count("a") == 4

    def test_pop_empty_returns_none(self):
        assert FairQueue(max_depth=1).pop() is None

    def test_drain_op_batches_matching_heads_fairly(self):
        q = FairQueue(max_depth=10)
        q.push(item("a", "schedule", 0))
        q.push(item("a", "schedule", 1))
        q.push(item("b", "transfer", 2))
        q.push(item("b", "schedule", 3))
        q.push(item("c", "schedule", 4))
        first = q.pop()
        assert (first.tenant, first.op) == ("a", "schedule")
        batch = q.drain_op("schedule", limit=8)
        # b's lane head is a transfer, so only its later schedule stays
        # queued (drain never reorders a tenant's own requests); a was
        # rotated to the back by the pop, so c drains first.
        assert [(i.tenant, i.doc["seq"]) for i in batch] == [
            ("c", 4), ("a", 1),
        ]
        assert q.depth == 2
        assert q.pop().op == "transfer"

    def test_drain_all_empties(self):
        q = FairQueue(max_depth=10)
        q.push(item("a"))
        q.push(item("b"))
        assert len(list(q.drain_all())) == 2
        assert q.depth == 0


class TestDegradationLadder:
    def make(self, **overrides):
        self.clock = [0.0]
        config = LadderConfig(
            engage_pressure=0.75, engage_after=1.0,
            release_pressure=0.25, release_after=3.0,
            **overrides,
        )
        return DegradationLadder(config, now=lambda: self.clock[0])

    def test_blip_does_not_escalate(self):
        ladder = self.make()
        ladder.observe(8, 10)
        self.clock[0] = 0.5
        ladder.observe(2, 10)  # pressure dropped before engage_after
        self.clock[0] = 1.5
        assert ladder.observe(8, 10) == 0

    def test_sustained_pressure_escalates_one_level_per_window(self):
        ladder = self.make()
        ladder.observe(9, 10)
        self.clock[0] = 1.1
        assert ladder.observe(9, 10) == 1
        # The next level needs its own sustained window.
        self.clock[0] = 1.2
        assert ladder.observe(9, 10) == 1
        self.clock[0] = 2.3
        assert ladder.observe(9, 10) == 2

    def test_level_capped_at_max(self):
        ladder = self.make(max_level=1)
        for t in (0.0, 1.1, 2.2, 3.3):
            self.clock[0] = t
            ladder.observe(10, 10)
        assert ladder.level == 1

    def test_release_steps_back_down(self):
        ladder = self.make()
        ladder.observe(9, 10)
        self.clock[0] = 1.1
        assert ladder.observe(9, 10) == 1
        self.clock[0] = 2.0
        ladder.observe(1, 10)
        self.clock[0] = 5.5
        assert ladder.observe(1, 10) == 0

    def test_apply_by_level(self):
        ladder = self.make()
        assert ladder.apply("oggp", "vector") == ("oggp", "vector", False)
        ladder._level = 1
        assert ladder.apply("oggp", "vector") == ("oggp", "approx", True)
        # approx stays approx: nothing to degrade at level 1.
        assert ladder.apply("greedy", "approx") == ("greedy", "approx", False)
        ladder._level = 2
        assert ladder.apply("oggp", "fast") == ("greedy", "approx", True)

    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ConfigError):
            LadderConfig(engage_pressure=0.2, release_pressure=0.5)
