"""In-process daemon tests: scheduling, robustness, degradation."""

import socket
import threading
import time

import numpy as np
import pytest

from repro.core.cache import cached_schedule
from repro.graph.generators import from_traffic_matrix
from repro.serve import (
    BackgroundServer,
    LadderConfig,
    ServeClient,
    ServeConfig,
    ServeError,
)
from repro.serve.protocol import FRAME_ERROR, decode_frame, encode_frame

MATRIX = [[4.0, 1.0], [2.0, 3.0]]


@pytest.fixture(scope="module")
def server():
    with BackgroundServer(ServeConfig(metrics_port=None)) as bg:
        yield bg


@pytest.fixture()
def client(server):
    with ServeClient(server.address) as c:
        yield c


class TestBasicOps:
    def test_ping(self, client):
        assert client.ping()["status"] == "ok"

    def test_status(self, client):
        doc = client.status()
        assert doc["queue_depth"] == 0
        assert doc["transfers_enabled"] is False

    def test_unknown_op_lists_valid_ops(self, client):
        with pytest.raises(ServeError, match="valid ops") as err:
            client.call("frobnicate", max_attempts=1)
        assert err.value.code == "UNKNOWN_OP"

    def test_schedule_matches_serial_cached_schedule(self, client):
        response = client.schedule(matrix=MATRIX, k=2, beta=0.1)
        expected = cached_schedule(
            from_traffic_matrix(MATRIX), 2, 0.1, "oggp", "fast", cache=None
        )
        assert response["cost"] == pytest.approx(expected.cost)
        assert response["num_steps"] == expected.num_steps
        assert response["degraded"] is False
        assert response["lower_bound"] <= response["cost"] + 1e-9

    def test_schedule_via_kpbw_graph_blob(self, client):
        graph = from_traffic_matrix(MATRIX)
        response = client.schedule(graph=graph, k=2, beta=0.1)
        expected = cached_schedule(graph, 2, 0.1, "oggp", "fast", cache=None)
        assert response["cost"] == pytest.approx(expected.cost)

    def test_schedule_without_matrix_or_graph(self, client):
        with pytest.raises(ServeError, match="matrix"):
            client.call("schedule", k=1, max_attempts=1)

    def test_bad_algorithm_rejected(self, client):
        with pytest.raises(ServeError, match="valid algorithms"):
            client.call(
                "schedule", matrix=MATRIX, algorithm="qsort", max_attempts=1
            )

    def test_transfer_disabled_without_state_dir(self, client):
        with pytest.raises(ServeError, match="state-dir"):
            client.transfer("r1", max_attempts=1)

    def test_concurrent_clients_multiplex(self, server):
        errors = []

        def worker(seed):
            rng = np.random.default_rng(seed)
            matrix = rng.uniform(1, 5, (3, 3)).tolist()
            try:
                with ServeClient(server.address) as c:
                    for _ in range(3):
                        doc = c.schedule(matrix=matrix, k=2)
                        assert doc["status"] == "ok"
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(seed,)) for seed in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60)
        assert not errors


class TestRobustness:
    def test_malformed_frame_gets_structured_error(self, server):
        host, port = server.address.rsplit(":", 1)
        with socket.create_connection((host, int(port)), timeout=10) as s:
            s.sendall(b"\x00" * 64)
            data = s.recv(1 << 16)
        ftype, doc, _ = decode_frame(data)
        assert ftype == FRAME_ERROR
        assert doc["code"] == "BAD_FRAME"

    def test_daemon_survives_malformed_frame(self, server, client):
        self.test_malformed_frame_gets_structured_error(server)
        assert client.ping()["status"] == "ok"

    def test_corrupt_crc_rejected_not_crashed(self, server, client):
        frame = bytearray(encode_frame(1, {"op": "ping"}))
        frame[-1] ^= 0xFF
        host, port = server.address.rsplit(":", 1)
        with socket.create_connection((host, int(port)), timeout=10) as s:
            s.sendall(bytes(frame))
            ftype, doc, _ = decode_frame(s.recv(1 << 16))
        assert doc["code"] == "BAD_FRAME"
        assert "CRC" in doc["detail"]
        assert client.ping()["status"] == "ok"

    def test_mid_frame_disconnect_tolerated(self, server, client):
        frame = encode_frame(1, {"op": "ping"})
        host, port = server.address.rsplit(":", 1)
        s = socket.create_connection((host, int(port)), timeout=10)
        s.sendall(frame[: len(frame) // 2])
        s.close()  # vanish mid-frame
        assert client.ping()["status"] == "ok"

    def test_deadline_expired_is_prompt_and_structured(self, client):
        big = np.random.default_rng(3).uniform(1, 9, (40, 40)).tolist()
        started = time.monotonic()
        response = client.request(
            {"op": "schedule", "matrix": big, "k": 4, "deadline_s": 0.005}
        )
        elapsed = time.monotonic() - started
        assert response["status"] == "error"
        assert response["code"] == "DEADLINE_EXPIRED"
        assert elapsed < 5.0  # answered, not hung


class TestQuotasAndShedding:
    def test_quota_shed_has_retry_hint(self):
        config = ServeConfig(
            metrics_port=None, tenant_rate=0.5, tenant_burst=1.0
        )
        with BackgroundServer(config) as bg:
            with ServeClient(bg.address, tenant="noisy") as c:
                assert c.schedule(matrix=MATRIX, k=1)["status"] == "ok"
                shed = c.request({"op": "schedule", "matrix": MATRIX, "k": 1})
                assert shed["status"] == "retry"
                assert shed["code"] == "RETRY_AFTER"
                assert shed["retry_after"] > 0.0
                # Another tenant is unaffected.
                with ServeClient(bg.address, tenant="quiet") as other:
                    assert other.schedule(matrix=MATRIX, k=1)["status"] == "ok"

    def test_client_retries_through_quota_shed(self):
        config = ServeConfig(
            metrics_port=None, tenant_rate=5.0, tenant_burst=1.0
        )
        with BackgroundServer(config) as bg:
            with ServeClient(bg.address, tenant="steady") as c:
                # Second call is shed, then retried after the hint.
                assert c.schedule(matrix=MATRIX, k=1)["status"] == "ok"
                assert c.schedule(matrix=MATRIX, k=1)["status"] == "ok"


class TestDegradationLadder:
    def test_degraded_responses_are_labeled(self):
        # Escalation timing is unit-tested in test_admission; here we pin
        # the end-to-end contract: once the ladder is engaged, responses
        # are served with the cheaper engine AND say so.  A slow release
        # window keeps the level from decaying mid-test.
        config = ServeConfig(
            metrics_port=None,
            ladder=LadderConfig(release_after=300.0),
        )
        with BackgroundServer(config) as bg:
            bg.server.ladder._level = 1
            with ServeClient(bg.address) as c:
                doc = c.schedule(matrix=MATRIX, k=2, engine="fast")
                assert doc["degraded"] is True
                assert doc["engine"] == "approx"
                assert doc["degraded_level"] == 1
                assert doc["algorithm"] == "oggp"  # level 1 keeps oggp

    def test_level_two_also_degrades_algorithm(self):
        config = ServeConfig(
            metrics_port=None,
            ladder=LadderConfig(release_after=300.0),
        )
        with BackgroundServer(config) as bg:
            bg.server.ladder._level = 2
            with ServeClient(bg.address) as c:
                doc = c.schedule(matrix=MATRIX, k=2)
                assert doc["degraded"] is True
                assert (doc["algorithm"], doc["engine"]) == ("greedy", "approx")
                # A degraded answer is still a valid schedule.
                assert doc["cost"] >= doc["lower_bound"] - 1e-9
