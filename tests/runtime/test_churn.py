"""Live-churn runtime executor: byte-exact delivery under traffic churn."""

import numpy as np
import pytest

from repro.resilience import FaultSpec, RetryPolicy
from repro.resilience.churn import ChurnSpec
from repro.runtime import (
    ChurnRunReport,
    LocalCluster,
    run_resilient_churn,
    schedule_and_run_resilient,
)
from repro.util.errors import ConfigError

FAST = dict(nic_rate1=1e9, nic_rate2=1e9, backbone_rate=1e9)

CHURN = ChurnSpec(
    seed=17, inject_rate=1.5, remove_rate=1.0, resize_rate=1.5, events=3,
    min_amount=2_000, max_amount=8_000,
)


def build_case(n1=3, n2=3, size=12_000, seed=2):
    rng = np.random.default_rng(seed)
    payloads = {}
    destinations = {}
    eid = 0
    for i in range(n1):
        for j in range(n2):
            length = int(rng.integers(size // 2, size))
            payloads[eid] = rng.integers(0, 256, length, dtype=np.uint8).tobytes()
            destinations[eid] = (i, j)
            eid += 1
    return payloads, destinations


def run(churn=CHURN, n1=3, n2=3, **kwargs):
    payloads, destinations = build_case(n1, n2)
    cluster = LocalCluster(n1, n2, **FAST)
    kwargs.setdefault("cache", None)
    return run_resilient_churn(
        cluster, payloads, destinations, churn.process(),
        k=2, beta=1.0, **kwargs,
    )


class TestChurnExecutor:
    def test_delivers_exactly_the_final_payload_set(self):
        report = run()
        report.raise_on_errors()
        assert isinstance(report, ChurnRunReport)
        assert report.complete
        assert set(report.delivered) == set(report.payloads)
        for eid, payload in report.payloads.items():
            assert report.delivered[eid] == payload
        assert report.churn_events >= 1
        assert report.bytes_moved == sum(len(p) for p in report.payloads.values())

    def test_byte_identical_reruns(self):
        a, b = run(), run()
        assert a.payloads == b.payloads
        assert a.delivered == b.delivered
        assert (a.splices, a.fallbacks, a.noops) == (b.splices, b.fallbacks, b.noops)

    def test_no_churn_ships_the_original_messages(self):
        payloads, _ = build_case()
        report = run(churn=ChurnSpec(seed=0, events=0))
        report.raise_on_errors()
        assert report.payloads == payloads
        assert report.delivered == payloads
        assert report.churn_events == 0
        assert report.fresh_builds == 1

    def test_composes_with_faults(self):
        faults = FaultSpec(seed=5, transfer_failure_rate=0.1).plan()
        report = run(faults=faults, retry=RetryPolicy(max_attempts=50))
        report.raise_on_errors()
        assert report.complete
        again = run(faults=faults, retry=RetryPolicy(max_attempts=50))
        assert report.delivered == again.delivered

    def test_injected_payloads_are_deterministic_synthetics(self):
        report = run()
        injected = set(report.payloads) - set(build_case()[0])
        assert injected  # churn at these rates injects something
        again = run()
        for eid in injected:
            assert report.payloads[eid] == again.payloads[eid]


class TestExecutorDelegation:
    def test_schedule_and_run_resilient_routes_churn(self):
        from repro.graph.bipartite import BipartiteGraph

        payloads, destinations = build_case()
        g = BipartiteGraph()
        for eid, (i, j) in sorted(destinations.items()):
            g.add_edge(i, j, len(payloads[eid]))
        cluster = LocalCluster(3, 3, **FAST)
        report = schedule_and_run_resilient(
            cluster, g, 2, 1.0, payloads, destinations,
            cache=None, churn=CHURN.process(),
        )
        assert isinstance(report, ChurnRunReport)
        assert report.complete

    def test_churn_with_checkpoint_rejected(self, tmp_path):
        from repro.graph.bipartite import BipartiteGraph

        payloads, destinations = build_case()
        g = BipartiteGraph()
        for eid, (i, j) in sorted(destinations.items()):
            g.add_edge(i, j, len(payloads[eid]))
        cluster = LocalCluster(3, 3, **FAST)
        with pytest.raises(ConfigError, match="checkpoint"):
            schedule_and_run_resilient(
                cluster, g, 2, 1.0, payloads, destinations,
                cache=None, churn=CHURN.process(),
                checkpoint=tmp_path / "ck",
            )

    def test_churn_with_scaled_amounts_rejected(self):
        from repro.graph.bipartite import BipartiteGraph

        payloads, destinations = build_case()
        g = BipartiteGraph()
        for eid, (i, j) in sorted(destinations.items()):
            g.add_edge(i, j, len(payloads[eid]) / 2)
        cluster = LocalCluster(3, 3, **FAST)
        with pytest.raises(ConfigError, match="amount_to_bytes"):
            schedule_and_run_resilient(
                cluster, g, 2, 1.0, payloads, destinations,
                cache=None, churn=CHURN.process(), amount_to_bytes=2.0,
            )

    def test_bad_segment_steps_rejected(self):
        with pytest.raises(ConfigError, match="segment_steps"):
            run(segment_steps=0)

    def test_bad_repair_bounds_rejected_eagerly(self):
        # Validated at entry, not lazily on the first repair — a quiet
        # churn draw must not let an out-of-range bound slip through.
        with pytest.raises(ConfigError, match="max_affected_frac"):
            run(max_affected_frac=-0.1)
        with pytest.raises(ConfigError, match="max_ratio"):
            run(max_ratio=0.99)
