"""Resilient runtime execution: fault injection, recovery, determinism."""

import numpy as np
import pytest

from repro import obs
from repro.core.oggp import oggp
from repro.graph.bipartite import BipartiteGraph
from repro.resilience import FaultSpec, RetryPolicy
from repro.runtime import (
    LocalCluster,
    run_scheduled,
    schedule_and_run,
    schedule_and_run_resilient,
)
from repro.util.errors import SimulationError

FAST = dict(nic_rate1=1e9, nic_rate2=1e9, backbone_rate=1e9)

FAULTS = FaultSpec(
    seed=21,
    transfer_failure_rate=0.25,
    transfer_stall_rate=0.1,
    link_degradation_rate=0.3,
    link_degradation_factor=0.5,
)

RETRY = RetryPolicy(max_attempts=8, backoff_base=0.0, jitter=0.0)


def build_case(n1=2, n2=2, size=20_000, seed=0):
    rng = np.random.default_rng(seed)
    g = BipartiteGraph()
    payloads = {}
    destinations = {}
    for i in range(n1):
        for j in range(n2):
            length = int(rng.integers(size // 2, size))
            e = g.add_edge(i, j, length)
            payloads[e.id] = rng.integers(0, 256, length, dtype=np.uint8).tobytes()
            destinations[e.id] = (i, j)
    return g, payloads, destinations


class TestFaultFreeEquivalence:
    def test_no_faults_matches_plain_run(self):
        g, payloads, destinations = build_case()
        cluster = LocalCluster(2, 2, **FAST)
        resilient = schedule_and_run_resilient(
            cluster, g, 2, 1.0, payloads, destinations, cache=None
        )
        _, plain = schedule_and_run(
            cluster, g, 2, 1.0, payloads, destinations, cache=None
        )
        assert resilient.rounds == 0
        assert resilient.recovery_schedules == ()
        assert resilient.complete
        assert resilient.errors == ()
        assert resilient.bytes_moved == plain.bytes_moved
        assert dict(resilient.delivered) == payloads
        resilient.raise_on_errors()

    def test_fault_free_plan_is_inert(self):
        g, payloads, destinations = build_case(seed=3)
        cluster = LocalCluster(2, 2, **FAST)
        report = schedule_and_run_resilient(
            cluster, g, 2, 1.0, payloads, destinations, cache=None,
            faults=FaultSpec(seed=5).plan(),
        )
        assert report.rounds == 0
        assert report.complete


class TestFaultedRecovery:
    def test_completes_under_faults(self):
        g, payloads, destinations = build_case(seed=1)
        cluster = LocalCluster(2, 2, **FAST)
        report = schedule_and_run_resilient(
            cluster, g, 2, 1.0, payloads, destinations, cache=None,
            faults=FAULTS.plan(), retry=RETRY,
        )
        assert report.rounds > 0, "expected faults at these rates"
        assert report.complete
        assert dict(report.delivered) == payloads
        assert report.bytes_moved == sum(len(p) for p in payloads.values())
        assert len(report.reports) == report.rounds + 1
        assert len(report.recovery_schedules) == report.rounds

    def test_same_seed_same_trajectory(self):
        def trajectory():
            g, payloads, destinations = build_case(seed=1)
            cluster = LocalCluster(2, 2, **FAST)
            report = schedule_and_run_resilient(
                cluster, g, 2, 1.0, payloads, destinations, cache=None,
                faults=FAULTS.plan(), retry=RETRY,
            )
            return (
                report.rounds,
                [len(s.steps) for s in report.recovery_schedules],
                [r.bytes_moved for r in report.reports],
            )

        assert trajectory() == trajectory()

    def test_counters_populated(self):
        g, payloads, destinations = build_case(seed=1)
        cluster = LocalCluster(2, 2, **FAST)
        with obs.observed() as (registry, _):
            schedule_and_run_resilient(
                cluster, g, 2, 1.0, payloads, destinations, cache=None,
                faults=FAULTS.plan(), retry=RETRY,
            )
            snap = registry.snapshot()
        for name in (
            "resilience.faults_injected",
            "resilience.retries",
            "resilience.retries.runtime",
            "resilience.recovery_rounds",
            "resilience.recovery_steps",
            "resilience.recovery_overhead_seconds",
        ):
            assert snap.get(name, {}).get("value", 0) > 0, name

    def test_exhausted_budget_reports_undelivered(self):
        g, payloads, destinations = build_case(seed=1)
        cluster = LocalCluster(2, 2, **FAST)
        report = schedule_and_run_resilient(
            cluster, g, 2, 1.0, payloads, destinations, cache=None,
            faults=FaultSpec(seed=21, transfer_failure_rate=0.9).plan(),
            retry=RetryPolicy(max_attempts=1),
        )
        assert not report.complete
        assert report.rounds == 0
        assert report.errors
        assert all(e.kind == "undelivered" for e in report.errors)
        with pytest.raises(SimulationError, match="incomplete"):
            report.raise_on_errors()

    def test_delivered_is_a_prefix(self):
        """Contiguous-prefix fault model: whatever arrived is a prefix
        of the payload, never a scrambled or torn subset."""
        g, payloads, destinations = build_case(seed=1)
        cluster = LocalCluster(2, 2, **FAST)
        schedule = oggp(g, k=2, beta=1.0)
        report = run_scheduled(
            cluster, schedule, payloads, destinations,
            faults=FAULTS.plan(), fault_round=0,
        )
        assert report.errors, "expected transfer faults at these rates"
        for eid, data in report.delivered.items():
            assert payloads[eid].startswith(data)

    def test_structured_failures_carry_step_and_edge(self):
        g, payloads, destinations = build_case(seed=1)
        cluster = LocalCluster(2, 2, **FAST)
        schedule = oggp(g, k=2, beta=1.0)
        report = run_scheduled(
            cluster, schedule, payloads, destinations,
            faults=FAULTS.plan(), fault_round=0,
        )
        assert report.errors
        for failure in report.errors:
            assert failure.kind in ("transfer_fail", "transfer_stall")
            assert failure.step is not None
            assert failure.edge_id is not None


class TestCheckpointedExecution:
    def test_checkpoint_records_complete_run(self, tmp_path):
        from repro.resilience import load_checkpoint

        g, payloads, destinations = build_case(seed=1)
        cluster = LocalCluster(2, 2, **FAST)
        report = schedule_and_run_resilient(
            cluster, g, 2, 1.0, payloads, destinations, cache=None,
            faults=FAULTS.plan(), retry=RETRY, checkpoint=tmp_path,
        )
        assert report.complete
        state = load_checkpoint(tmp_path)
        assert state.complete
        assert state.delivered == {
            eid: len(p) for eid, p in payloads.items()
        }
        assert state.meta.extra["engine"] == "runtime"
        assert state.next_round == report.rounds + 1

    def test_resume_completes_partial_run_bit_identically(self, tmp_path):
        from repro.runtime import resume_and_run_resilient

        g, payloads, destinations = build_case(seed=1)
        cluster = LocalCluster(2, 2, **FAST)
        # Starve the retry budget so the first process "dies" partial.
        partial = schedule_and_run_resilient(
            cluster, g, 2, 1.0, payloads, destinations, cache=None,
            faults=FAULTS.plan(),
            retry=RetryPolicy(max_attempts=1, backoff_base=0.0, jitter=0.0),
            checkpoint=tmp_path,
        )
        assert not partial.complete, "expected faults to leave a residue"
        resumed = resume_and_run_resilient(
            LocalCluster(2, 2, **FAST), tmp_path, payloads,
            faults=FAULTS.plan(), retry=RETRY,
        )
        assert resumed.complete
        assert dict(resumed.delivered) == payloads

    def test_resume_matches_uninterrupted_trajectory(self, tmp_path):
        """Killed-and-resumed == never-killed, byte for byte."""
        from repro.runtime import resume_and_run_resilient

        g, payloads, destinations = build_case(seed=1)
        uninterrupted = schedule_and_run_resilient(
            LocalCluster(2, 2, **FAST), g, 2, 1.0, payloads, destinations,
            cache=None, faults=FAULTS.plan(), retry=RETRY,
        )
        partial = schedule_and_run_resilient(
            LocalCluster(2, 2, **FAST), g, 2, 1.0, payloads, destinations,
            cache=None, faults=FAULTS.plan(),
            retry=RetryPolicy(max_attempts=2, backoff_base=0.0, jitter=0.0),
            checkpoint=tmp_path,
        )
        resumed = resume_and_run_resilient(
            LocalCluster(2, 2, **FAST), tmp_path, payloads,
            faults=FAULTS.plan(), retry=RETRY,
        )
        assert dict(resumed.delivered) == dict(uninterrupted.delivered)
        assert partial.rounds + resumed.rounds + 1 >= uninterrupted.rounds

    def test_resume_of_complete_run_is_a_noop(self, tmp_path):
        from repro.runtime import resume_and_run_resilient

        g, payloads, destinations = build_case(seed=3)
        schedule_and_run_resilient(
            LocalCluster(2, 2, **FAST), g, 2, 1.0, payloads, destinations,
            cache=None, checkpoint=tmp_path,
        )
        resumed = resume_and_run_resilient(
            LocalCluster(2, 2, **FAST), tmp_path, payloads,
        )
        assert resumed.complete
        assert resumed.rounds == 0
        assert resumed.reports == ()  # nothing pending: no round executed
        assert dict(resumed.delivered) == payloads

    def test_resume_rejects_wrong_payloads(self, tmp_path):
        from repro.runtime import resume_and_run_resilient

        g, payloads, destinations = build_case(seed=1)
        schedule_and_run_resilient(
            LocalCluster(2, 2, **FAST), g, 2, 1.0, payloads, destinations,
            cache=None, checkpoint=tmp_path,
        )
        wrong = dict(payloads)
        wrong[0] = wrong[0] + b"extra"
        with pytest.raises(SimulationError, match="payload"):
            resume_and_run_resilient(
                LocalCluster(2, 2, **FAST), tmp_path, wrong,
            )

    def test_checkpoint_counters_populated(self, tmp_path):
        g, payloads, destinations = build_case(seed=1)
        with obs.observed() as (registry, _):
            schedule_and_run_resilient(
                LocalCluster(2, 2, **FAST), g, 2, 1.0, payloads,
                destinations, cache=None, faults=FAULTS.plan(),
                retry=RETRY, checkpoint=tmp_path,
            )
            snap = registry.snapshot()
        assert snap["checkpoint.records_written"]["value"] >= 2
        assert snap["checkpoint.fsyncs"]["value"] >= 1
