"""Tests for the thread-backed LocalCluster."""

import threading

import pytest

from repro.runtime.local import CHUNK_BYTES, LocalCluster
from repro.util.errors import ConfigError, SimulationError

FAST = dict(nic_rate1=1e9, nic_rate2=1e9, backbone_rate=1e9)


class TestEndpoints:
    def test_send_recv_roundtrip(self):
        cluster = LocalCluster(1, 1, **FAST)
        payload = b"hello world" * 1000
        out = {}

        def rx():
            out["data"] = cluster.receiver(0).recv(0)

        t = threading.Thread(target=rx)
        t.start()
        cluster.sender(0).send(0, payload)
        t.join(timeout=5)
        assert out["data"] == payload

    def test_multi_chunk_message(self):
        cluster = LocalCluster(1, 1, **FAST)
        payload = bytes(range(256)) * (CHUNK_BYTES // 64)  # several chunks
        out = {}

        def rx():
            out["data"] = cluster.receiver(0).recv(0)

        t = threading.Thread(target=rx)
        t.start()
        cluster.sender(0).send(0, payload)
        t.join(timeout=5)
        assert out["data"] == payload

    def test_empty_message(self):
        cluster = LocalCluster(1, 1, **FAST)
        out = {}

        def rx():
            out["data"] = cluster.receiver(0).recv(0)

        t = threading.Thread(target=rx)
        t.start()
        cluster.sender(0).send(0, b"")
        t.join(timeout=5)
        assert out["data"] == b""

    def test_receiver_cannot_send(self):
        cluster = LocalCluster(1, 1, **FAST)
        with pytest.raises(SimulationError):
            cluster.receiver(0).send(0, b"x")

    def test_sender_cannot_recv(self):
        cluster = LocalCluster(1, 1, **FAST)
        with pytest.raises(SimulationError):
            cluster.sender(0).recv(0)

    def test_invalid_sizes(self):
        with pytest.raises(ConfigError):
            LocalCluster(0, 1, **FAST)


class TestBarrier:
    def test_all_ranks_participate(self):
        cluster = LocalCluster(2, 2, **FAST)
        passed = []
        lock = threading.Lock()

        def party(ep):
            ep.barrier()
            with lock:
                passed.append(ep.index)

        threads = [
            threading.Thread(target=party, args=(cluster.sender(i),))
            for i in range(2)
        ] + [
            threading.Thread(target=party, args=(cluster.receiver(i),))
            for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        assert len(passed) == 4


class TestShaping:
    def test_transfer_paced_by_nic(self):
        import time

        # 1 MB at 5 MB/s NIC with small burst -> >= ~0.15 s.
        cluster = LocalCluster(
            1, 1, nic_rate1=5e6, nic_rate2=1e9, backbone_rate=1e9,
            burst=64 * 1024,
        )
        payload = b"x" * 1_000_000
        out = {}

        def rx():
            out["data"] = cluster.receiver(0).recv(0)

        t = threading.Thread(target=rx)
        t.start()
        start = time.perf_counter()
        cluster.sender(0).send(0, payload)
        t.join(timeout=10)
        elapsed = time.perf_counter() - start
        assert out["data"] == payload
        assert elapsed >= 0.1
