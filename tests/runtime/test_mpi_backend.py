"""Tests for the mpi4py backend's MPI-independent pieces."""

import pytest

from repro.core.oggp import oggp
from repro.graph.bipartite import BipartiteGraph
from repro.runtime.mpi_backend import _require_mpi, slice_plan
from repro.util.errors import SimulationError


def build_case():
    g = BipartiteGraph.from_edges(
        [(0, 0, 1000), (0, 1, 700), (1, 0, 500), (1, 1, 1200)]
    )
    sizes = {e.id: int(e.weight) for e in g.edges_sorted()}
    return g, sizes


class TestSlicePlan:
    def test_chunks_cover_each_payload_exactly(self):
        g, sizes = build_case()
        sched = oggp(g, k=2, beta=300.0)  # force preemption
        plans = slice_plan(sched, sizes)
        covered = {eid: [] for eid in sizes}
        for plan in plans:
            for eid, _src, _dst, lo, hi in plan:
                covered[eid].append((lo, hi))
        for eid, ranges in covered.items():
            ranges.sort()
            assert ranges[0][0] == 0
            assert ranges[-1][1] == sizes[eid]
            for (a, b), (c, d) in zip(ranges, ranges[1:]):
                assert b == c, "chunks must be contiguous"

    def test_plan_matches_step_structure(self):
        g, sizes = build_case()
        sched = oggp(g, k=2, beta=100.0)
        plans = slice_plan(sched, sizes)
        assert len(plans) == sched.num_steps
        for plan, step in zip(plans, sched.steps):
            assert len(plan) == len(step.transfers)

    def test_unscheduled_payload_detected(self):
        g, sizes = build_case()
        sched = oggp(g, k=2, beta=100.0)
        extra = dict(sizes)
        extra[max(sizes) + 99] = 500  # payload the schedule never ships
        with pytest.raises(SimulationError):
            slice_plan(sched, extra)

    def test_oversized_payload_absorbed_by_final_chunk(self):
        # The final chunk takes the remainder, so a size mismatch on a
        # *scheduled* edge self-heals (timing skews, bytes complete).
        g, sizes = build_case()
        sched = oggp(g, k=2, beta=100.0)
        bigger = dict(sizes)
        first = next(iter(bigger))
        bigger[first] += 1000
        plans = slice_plan(sched, bigger)
        last_end = max(
            hi for plan in plans for eid, _s, _d, _lo, hi in plan
            if eid == first
        )
        assert last_end == bigger[first]


class TestMpiGuard:
    def test_missing_mpi4py_raises_cleanly(self):
        try:
            import mpi4py  # noqa: F401

            pytest.skip("mpi4py present; guard path not reachable")
        except ImportError:
            pass
        with pytest.raises(SimulationError, match="mpi4py is not installed"):
            _require_mpi()
