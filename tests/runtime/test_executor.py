"""Tests for the runtime executors (scheduled and brute force)."""

import numpy as np
import pytest

from repro.core.oggp import oggp
from repro.core.schedule import Schedule, Step, Transfer
from repro.graph.bipartite import BipartiteGraph
from repro.runtime import LocalCluster, run_bruteforce, run_scheduled
from repro.runtime.executor import TransferPlanError, _slice_plan

FAST = dict(nic_rate1=1e9, nic_rate2=1e9, backbone_rate=1e9)


def build_case(n1=2, n2=2, size=50_000, seed=0):
    rng = np.random.default_rng(seed)
    g = BipartiteGraph()
    payloads = {}
    destinations = {}
    for i in range(n1):
        for j in range(n2):
            length = int(rng.integers(size // 2, size))
            e = g.add_edge(i, j, length)
            payloads[e.id] = rng.integers(0, 256, length, dtype=np.uint8).tobytes()
            destinations[e.id] = (i, j)
    return g, payloads, destinations


class TestSlicePlan:
    def test_slices_reassemble_exactly(self):
        g, payloads, _ = build_case()
        sched = oggp(g, k=2, beta=1000.0)
        plans = _slice_plan(sched, payloads, amount_to_bytes=1.0)
        rebuilt: dict[int, bytes] = {eid: b"" for eid in payloads}
        for plan in plans:
            for _sender, (eid, _dst, chunk) in plan.items():
                rebuilt[eid] += chunk
        assert rebuilt == payloads

    def test_missing_payload_raises(self):
        sched = Schedule([Step([Transfer(99, 0, 0, 10.0)])], k=1, beta=0.0)
        with pytest.raises(TransferPlanError):
            _slice_plan(sched, {}, 1.0)

    def test_wrong_scale_still_reassembles(self):
        # The final chunk absorbs rounding/scale error, so a misscaled
        # plan still ships every byte (step timing just skews).
        g, payloads, _ = build_case()
        sched = oggp(g, k=2, beta=1000.0)
        plans = _slice_plan(sched, payloads, amount_to_bytes=0.5)
        rebuilt: dict[int, bytes] = {eid: b"" for eid in payloads}
        for plan in plans:
            for _sender, (eid, _dst, chunk) in plan.items():
                rebuilt[eid] += chunk
        assert rebuilt == payloads

    def test_unscheduled_payload_detected(self):
        g, payloads, _ = build_case()
        sched = oggp(g, k=2, beta=1000.0)
        extra = dict(payloads)
        extra[max(payloads) + 1000] = b"never shipped"
        with pytest.raises(TransferPlanError):
            _slice_plan(sched, extra, amount_to_bytes=1.0)


class TestRunScheduled:
    def test_moves_and_verifies_all_bytes(self):
        g, payloads, destinations = build_case()
        sched = oggp(g, k=2, beta=1000.0)
        sched.validate(g)
        cluster = LocalCluster(2, 2, **FAST)
        report = run_scheduled(cluster, sched, payloads, destinations)
        report.raise_on_errors()
        assert report.bytes_moved == sum(len(p) for p in payloads.values())
        assert report.num_steps == sched.num_steps
        assert report.total_seconds > 0

    def test_preempted_messages_reassemble(self):
        # Force preemption with a tiny beta (many small steps).
        g, payloads, destinations = build_case(size=120_000)
        sched = oggp(g, k=2, beta=10_000.0)
        assert any(
            len([t for s in sched.steps for t in s.transfers
                 if t.edge_id == eid]) > 1
            for eid in payloads
        ), "test needs at least one preempted message"
        cluster = LocalCluster(2, 2, **FAST)
        report = run_scheduled(cluster, sched, payloads, destinations)
        report.raise_on_errors()

    def test_3x3_with_k2(self):
        g, payloads, destinations = build_case(n1=3, n2=3, size=30_000, seed=3)
        sched = oggp(g, k=2, beta=5000.0)
        cluster = LocalCluster(3, 3, **FAST)
        report = run_scheduled(cluster, sched, payloads, destinations)
        report.raise_on_errors()


class TestRunBruteforce:
    def test_moves_and_verifies_all_bytes(self):
        _, payloads, destinations = build_case()
        cluster = LocalCluster(2, 2, **FAST)
        report = run_bruteforce(cluster, payloads, destinations)
        report.raise_on_errors()
        assert report.num_steps == 1

    def test_duplicate_pairs_rejected(self):
        cluster = LocalCluster(2, 2, **FAST)
        payloads = {0: b"a", 1: b"b"}
        destinations = {0: (0, 0), 1: (0, 0)}
        with pytest.raises(TransferPlanError):
            run_bruteforce(cluster, payloads, destinations)

    def test_out_of_range_flow_rejected_before_threads_start(self):
        cluster = LocalCluster(2, 2, **FAST)
        with pytest.raises(TransferPlanError, match="outside cluster"):
            run_bruteforce(cluster, {0: b"a"}, {0: (0, 5)})


class TestRoutingValidation:
    def test_scheduled_out_of_range_rejected(self):
        # Would deadlock the barrier if threads ever started.
        from repro.core.schedule import Schedule, Step, Transfer

        cluster = LocalCluster(2, 2, **FAST)
        sched = Schedule([Step([Transfer(0, 0, 7, 5.0)])], k=1, beta=0.0)
        with pytest.raises(TransferPlanError, match="outside cluster"):
            run_scheduled(cluster, sched, {0: b"x" * 5}, {0: (0, 7)})


class TestReport:
    def test_raise_on_errors(self):
        from repro.runtime.executor import RuntimeFailure, RuntimeReport
        from repro.util.errors import SimulationError

        clean = RuntimeReport(1.0, 10, 1)
        clean.raise_on_errors()
        bad = RuntimeReport(
            1.0, 10, 1, errors=(RuntimeFailure("test", "oops"),)
        )
        with pytest.raises(SimulationError, match="oops"):
            bad.raise_on_errors()

    def test_failure_str_carries_step_and_edge(self):
        from repro.runtime.executor import RuntimeFailure

        full = RuntimeFailure("transfer_fail", "lost", step=3, edge_id=7)
        assert str(full) == "[transfer_fail @ step 3, edge 7] lost"
        assert str(RuntimeFailure("sender", "boom")) == "[sender] boom"
        assert str(RuntimeFailure("x", "d", step=0)) == "[x @ step 0] d"
        assert str(RuntimeFailure("x", "d", edge_id=2)) == "[x @ edge 2] d"

    def test_raise_on_errors_one_per_line(self):
        from repro.runtime.executor import RuntimeFailure, RuntimeReport
        from repro.util.errors import SimulationError

        bad = RuntimeReport(
            1.0,
            10,
            1,
            errors=(
                RuntimeFailure("a", "first", step=1),
                RuntimeFailure("b", "second", edge_id=4),
            ),
        )
        with pytest.raises(SimulationError) as exc:
            bad.raise_on_errors()
        lines = str(exc.value).splitlines()
        assert lines[1:] == ["  - [a @ step 1] first", "  - [b @ edge 4] second"]


class TestEngineThreading:
    """`engine=` reaches the scheduler from every runtime entry point."""

    @pytest.mark.parametrize("engine", ["vector", "approx"])
    def test_schedule_and_run_with_engine(self, engine):
        from repro.runtime import schedule_and_run

        g, payloads, destinations = build_case()
        cluster = LocalCluster(2, 2, **FAST)
        schedule, report = schedule_and_run(
            cluster, g, 2, 1.0, payloads, destinations, engine=engine,
            cache=None,
        )
        assert report.delivered == payloads
        if engine == "vector":
            # Exact engine: the schedule is the one 'fast' would build.
            baseline = oggp(g, 2, 1.0, engine="fast")
            assert schedule.to_dict() == baseline.to_dict()

    def test_resilient_run_with_vector_engine(self):
        from repro.runtime import schedule_and_run_resilient

        g, payloads, destinations = build_case()
        cluster = LocalCluster(2, 2, **FAST)
        report = schedule_and_run_resilient(
            cluster, g, 2, 1.0, payloads, destinations, engine="vector",
            cache=None,
        )
        assert report.delivered == payloads
