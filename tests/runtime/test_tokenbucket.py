"""Tests for the token-bucket shaper."""

import time

import pytest

from repro.runtime.tokenbucket import TokenBucket
from repro.util.errors import ConfigError


class TestTokenBucket:
    def test_burst_available_immediately(self):
        bucket = TokenBucket(rate=1000.0, burst=500.0)
        assert bucket.try_acquire(500.0)
        assert not bucket.try_acquire(100.0)

    def test_refill_over_time(self):
        bucket = TokenBucket(rate=100_000.0, burst=100.0)
        assert bucket.try_acquire(100.0)
        time.sleep(0.01)  # ~1000 tokens refilled
        assert bucket.try_acquire(100.0)

    def test_blocking_acquire_paces(self):
        bucket = TokenBucket(rate=10_000.0, burst=100.0)
        bucket.try_acquire(100.0)  # drain the burst
        start = time.perf_counter()
        bucket.acquire(500.0)  # needs ~0.05 s at 10k/s
        elapsed = time.perf_counter() - start
        assert elapsed >= 0.04

    def test_acquire_within_burst_is_instant(self):
        bucket = TokenBucket(rate=10.0, burst=1000.0)
        start = time.perf_counter()
        bucket.acquire(500.0)
        assert time.perf_counter() - start < 0.02

    def test_debt_allows_oversized_requests(self):
        bucket = TokenBucket(rate=100_000.0, burst=10.0)
        waited = bucket.acquire(1000.0)  # 100x the burst
        assert waited >= (1000.0 - 10.0) / 100_000.0 * 0.5
        assert bucket.available <= bucket.burst

    def test_rate_approximately_enforced(self):
        rate = 200_000.0
        bucket = TokenBucket(rate=rate, burst=1000.0)
        bucket.try_acquire(1000.0)
        total = 10_000.0
        start = time.perf_counter()
        for _ in range(10):
            bucket.acquire(total / 10)
        elapsed = time.perf_counter() - start
        assert elapsed >= total / rate * 0.8

    def test_validation(self):
        with pytest.raises(ConfigError):
            TokenBucket(rate=0, burst=1)
        with pytest.raises(ConfigError):
            TokenBucket(rate=1, burst=0)
        bucket = TokenBucket(rate=1, burst=1)
        with pytest.raises(ConfigError):
            bucket.acquire(-1)
        with pytest.raises(ConfigError):
            bucket.try_acquire(-1)

    def test_zero_amount(self):
        bucket = TokenBucket(rate=1.0, burst=1.0)
        assert bucket.try_acquire(0.0)
        assert bucket.acquire(0.0) == 0.0
