"""Paper-scale runtime execution (10+10 ranks, real bytes), slow-marked."""

import numpy as np
import pytest

from repro.core.oggp import oggp
from repro.graph.bipartite import BipartiteGraph
from repro.runtime import LocalCluster, run_bruteforce, run_scheduled


@pytest.mark.slow
class TestPaperScaleRuntime:
    """The paper's 10x10 all-to-all, miniaturised volumes, real threads."""

    def build(self, seed: int = 0):
        rng = np.random.default_rng(seed)
        graph = BipartiteGraph()
        payloads: dict[int, bytes] = {}
        destinations: dict[int, tuple[int, int]] = {}
        for i in range(10):
            for j in range(10):
                size = int(rng.integers(20_000, 60_000))
                edge = graph.add_edge(i, j, size)
                payloads[edge.id] = rng.integers(
                    0, 256, size, dtype=np.uint8
                ).tobytes()
                destinations[edge.id] = (i, j)
        return graph, payloads, destinations

    def test_scheduled_and_bruteforce_move_everything(self):
        graph, payloads, destinations = self.build()
        k = 3
        backbone = 400e6
        nic = backbone / k
        schedule = oggp(graph, k=k, beta=20_000.0)
        schedule.validate(graph)

        cluster = LocalCluster(10, 10, nic_rate1=nic, nic_rate2=nic,
                               backbone_rate=backbone)
        scheduled = run_scheduled(cluster, schedule, payloads, destinations)
        scheduled.raise_on_errors()
        assert scheduled.bytes_moved == sum(len(p) for p in payloads.values())

        cluster = LocalCluster(10, 10, nic_rate1=nic, nic_rate2=nic,
                               backbone_rate=backbone)
        brute = run_bruteforce(cluster, payloads, destinations)
        brute.raise_on_errors()
        assert brute.bytes_moved == scheduled.bytes_moved

    def test_heavy_preemption_reassembles(self):
        graph, payloads, destinations = self.build(seed=7)
        # Large beta forces coarse normalisation and multi-chunk edges.
        schedule = oggp(graph, k=5, beta=15_000.0)
        multi_chunk = sum(
            1
            for eid in payloads
            if sum(1 for s in schedule.steps for t in s.transfers
                   if t.edge_id == eid) > 1
        )
        assert multi_chunk > 0
        cluster = LocalCluster(10, 10, nic_rate1=200e6, nic_rate2=200e6,
                               backbone_rate=1e9)
        report = run_scheduled(cluster, schedule, payloads, destinations)
        report.raise_on_errors()
