"""Test suite for the K-PBS reproduction."""
