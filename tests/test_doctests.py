"""Run the doctest examples embedded in public docstrings."""

import doctest
import importlib

import pytest

# Resolved via importlib: several submodule names (e.g. repro.core.ggp)
# are shadowed on their package by the same-named function re-export.
MODULE_NAMES = [
    "repro",
    "repro.core.bounds",
    "repro.core.bvn",
    "repro.core.ggp",
    "repro.core.oggp",
    "repro.core.postopt",
    "repro.graph.bipartite",
]


@pytest.mark.parametrize("name", MODULE_NAMES)
def test_doctests(name):
    module = importlib.import_module(name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures"
    # Each listed module is expected to actually contain examples.
    assert results.attempted > 0, f"no doctests found in {name}"
