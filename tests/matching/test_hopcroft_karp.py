"""Tests for Hopcroft–Karp, including a brute-force cross-check."""

from itertools import combinations

from hypothesis import given, settings

from repro.graph.bipartite import BipartiteGraph
from repro.matching.hopcroft_karp import hopcroft_karp
from repro.matching.greedy import greedy_matching
from tests.conftest import bipartite_graphs


def brute_force_max_matching_size(graph: BipartiteGraph) -> int:
    """Exponential reference: try all edge subsets, largest matching wins."""
    edges = list(graph.edges())
    for size in range(min(len(edges), graph.num_left, graph.num_right), 0, -1):
        for subset in combinations(edges, size):
            lefts = {e.left for e in subset}
            rights = {e.right for e in subset}
            if len(lefts) == size and len(rights) == size:
                return size
    return 0


class TestBasics:
    def test_empty_graph(self):
        assert len(hopcroft_karp(BipartiteGraph())) == 0

    def test_single_edge(self):
        g = BipartiteGraph.from_edges([(0, 0, 1)])
        m = hopcroft_karp(g)
        assert len(m) == 1
        assert m.is_perfect_in(g)

    def test_star_matches_one(self):
        g = BipartiteGraph.from_edges([(0, j, 1) for j in range(4)])
        assert len(hopcroft_karp(g)) == 1

    def test_perfect_matching_on_cycle(self):
        # 3x3 "two diagonals" graph has a perfect matching.
        g = BipartiteGraph.from_edges(
            [(i, i, 1) for i in range(3)] + [(i, (i + 1) % 3, 1) for i in range(3)]
        )
        m = hopcroft_karp(g)
        assert len(m) == 3
        m.validate(g)

    def test_augmenting_path_needed(self):
        # Greedy on ids would pick (0,0) and block; HK must find size 2.
        g = BipartiteGraph.from_edges([(0, 0, 1), (1, 0, 1), (0, 1, 1)])
        assert len(hopcroft_karp(g)) == 2

    def test_allowed_filter_restricts_edges(self):
        g = BipartiteGraph.from_edges([(0, 0, 1), (1, 1, 1)])
        first = g.edge_ids()[0]
        m = hopcroft_karp(g, allowed=[first])
        assert len(m) == 1
        assert m.edge_ids() == {first}

    def test_parallel_edges(self):
        g = BipartiteGraph.from_edges([(0, 0, 1), (0, 0, 2)])
        m = hopcroft_karp(g)
        assert len(m) == 1


class TestWarmStart:
    def test_stale_initial_edges_are_dropped(self):
        g = BipartiteGraph.from_edges([(0, 0, 1), (1, 1, 1)])
        m = hopcroft_karp(g)
        removed = m.edges()[0]
        g.remove_edge(removed.id)
        m2 = hopcroft_karp(g, initial=m)
        assert len(m2) == 1
        assert removed.id not in m2.edge_ids()

    def test_warm_start_equals_cold_start_size(self):
        g = BipartiteGraph.from_edges(
            [(i, j, 1) for i in range(4) for j in range(4) if (i + j) % 2 == 0]
        )
        seed = greedy_matching(g)
        warm = hopcroft_karp(g, initial=seed)
        cold = hopcroft_karp(g)
        assert len(warm) == len(cold)

    def test_initial_not_mutated(self):
        g = BipartiteGraph.from_edges([(0, 0, 1), (0, 1, 1), (1, 0, 1)])
        seed = greedy_matching(g, order="id")
        before = seed.edge_ids()
        hopcroft_karp(g, initial=seed)
        assert seed.edge_ids() == before


class TestAgainstBruteForce:
    @given(bipartite_graphs(max_side=4, max_edges=7))
    @settings(max_examples=80, deadline=None)
    def test_maximum_cardinality(self, g):
        m = hopcroft_karp(g)
        m.validate(g)
        assert len(m) == brute_force_max_matching_size(g)

    @given(bipartite_graphs(max_side=5, max_edges=14))
    @settings(max_examples=60, deadline=None)
    def test_at_least_greedy(self, g):
        assert len(hopcroft_karp(g)) >= len(greedy_matching(g))

    @given(bipartite_graphs(max_side=5, max_edges=14))
    @settings(max_examples=60, deadline=None)
    def test_deterministic(self, g):
        a = hopcroft_karp(g)
        b = hopcroft_karp(g)
        assert a.edge_ids() == b.edge_ids()
