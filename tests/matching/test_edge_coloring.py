"""Tests for König edge colouring."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.bipartite import BipartiteGraph
from repro.matching.edge_coloring import koenig_edge_coloring
from tests.conftest import bipartite_graphs


def multigraph(seed: int, n1: int, n2: int, m: int) -> BipartiteGraph:
    rng = np.random.default_rng(seed)
    g = BipartiteGraph()
    for _ in range(m):
        g.add_edge(int(rng.integers(0, n1)), int(rng.integers(0, n2)), 1)
    return g


class TestBasics:
    def test_empty(self):
        assert koenig_edge_coloring(BipartiteGraph()) == []

    def test_single_edge(self):
        g = BipartiteGraph.from_edges([(0, 0, 1)])
        classes = koenig_edge_coloring(g)
        assert len(classes) == 1

    def test_star_needs_degree_classes(self):
        g = BipartiteGraph.from_edges([(0, j, 1) for j in range(5)])
        classes = koenig_edge_coloring(g)
        assert len(classes) == 5

    def test_parallel_edges(self):
        g = BipartiteGraph.from_edges([(0, 0, 1)] * 4)
        classes = koenig_edge_coloring(g)
        assert len(classes) == 4

    def test_kempe_chain_case(self):
        # Path u0-v0-u1-v1 plus edge forcing a chain flip.
        g = BipartiteGraph.from_edges(
            [(0, 0, 1), (1, 0, 1), (1, 1, 1), (2, 1, 1), (2, 0, 1)]
        )
        classes = koenig_edge_coloring(g)
        assert len(classes) <= g.max_degree()
        covered = sorted(e.id for cls in classes for e in cls)
        assert covered == g.edge_ids()


class TestKoenigTheorem:
    @given(bipartite_graphs(max_side=7, max_edges=25))
    @settings(max_examples=80, deadline=None)
    def test_at_most_delta_classes_each_a_matching(self, g):
        classes = koenig_edge_coloring(g)
        assert len(classes) <= g.max_degree()
        seen = []
        for cls in classes:
            lefts = [e.left for e in cls]
            rights = [e.right for e in cls]
            assert len(set(lefts)) == len(lefts)
            assert len(set(rights)) == len(rights)
            seen.extend(e.id for e in cls)
        assert sorted(seen) == g.edge_ids()

    @given(st.integers(0, 2000), st.integers(1, 6), st.integers(1, 6),
           st.integers(1, 25))
    @settings(max_examples=80, deadline=None)
    def test_multigraphs(self, seed, n1, n2, m):
        g = multigraph(seed, n1, n2, m)
        classes = koenig_edge_coloring(g)
        assert len(classes) <= g.max_degree()
        for cls in classes:
            pairs_l = [e.left for e in cls]
            pairs_r = [e.right for e in cls]
            assert len(set(pairs_l)) == len(pairs_l)
            assert len(set(pairs_r)) == len(pairs_r)

    def test_regular_graph_gets_exactly_delta(self):
        # 3-regular bipartite: exactly 3 perfect-matching classes.
        g = BipartiteGraph.from_edges(
            [(i, (i + d) % 4, 1) for i in range(4) for d in range(3)]
        )
        classes = koenig_edge_coloring(g)
        assert len(classes) == 3
        assert all(len(cls) == 4 for cls in classes)
