"""Tests for the greedy maximal matching."""

import pytest
from hypothesis import given, settings

from repro.graph.bipartite import BipartiteGraph
from repro.matching.greedy import greedy_matching
from repro.matching.hopcroft_karp import hopcroft_karp
from tests.conftest import bipartite_graphs


class TestOrders:
    def test_weight_desc_takes_heaviest(self):
        g = BipartiteGraph.from_edges([(0, 0, 1), (0, 1, 9)])
        m = greedy_matching(g, order="weight_desc")
        assert m.max_weight() == 9

    def test_weight_asc_takes_lightest(self):
        g = BipartiteGraph.from_edges([(0, 0, 1), (0, 1, 9)])
        m = greedy_matching(g, order="weight_asc")
        assert m.max_weight() == 1

    def test_id_order(self):
        g = BipartiteGraph.from_edges([(0, 0, 1), (0, 1, 9)])
        m = greedy_matching(g, order="id")
        assert next(iter(m)).weight == 1

    def test_allowed_filter(self):
        g = BipartiteGraph.from_edges([(0, 0, 5), (1, 1, 5)])
        keep = g.edge_ids()[1]
        m = greedy_matching(g, allowed=[keep])
        assert m.edge_ids() == {keep}


class TestMaximality:
    @given(bipartite_graphs(max_side=5, max_edges=12))
    @settings(max_examples=60)
    def test_result_is_maximal(self, g):
        m = greedy_matching(g)
        m.validate(g)
        for e in g.edges():
            assert m.covers_left(e.left) or m.covers_right(e.right)

    @given(bipartite_graphs(max_side=5, max_edges=12))
    @settings(max_examples=60, deadline=None)
    def test_at_least_half_of_maximum(self, g):
        # Classical guarantee for any maximal matching.
        assert 2 * len(greedy_matching(g)) >= len(hopcroft_karp(g))

    def test_empty_graph(self):
        assert len(greedy_matching(BipartiteGraph())) == 0
