"""Tests for the bottleneck (max-min-weight) matching — paper Figure 6."""

from itertools import combinations

import pytest
from hypothesis import given, settings

from repro.graph.bipartite import BipartiteGraph
from repro.matching.bottleneck import bottleneck_matching
from repro.matching.hopcroft_karp import hopcroft_karp
from repro.util.errors import MatchingError
from tests.conftest import bipartite_graphs


def brute_force_best_bottleneck(graph: BipartiteGraph, target: int) -> float:
    """Max over all size-``target`` matchings of the min edge weight."""
    edges = list(graph.edges())
    best = None
    for subset in combinations(edges, target):
        lefts = {e.left for e in subset}
        rights = {e.right for e in subset}
        if len(lefts) == target and len(rights) == target:
            bn = min(e.weight for e in subset)
            if best is None or bn > best:
                best = bn
    if best is None:
        raise AssertionError("no matching of target size exists")
    return best


class TestBasics:
    def test_empty_graph(self):
        assert len(bottleneck_matching(BipartiteGraph())) == 0

    def test_single_edge(self):
        g = BipartiteGraph.from_edges([(0, 0, 7)])
        m = bottleneck_matching(g)
        assert m.min_weight() == 7

    def test_prefers_heavy_min(self):
        # Two perfect matchings: {(0,0,1),(1,1,10)} min 1 or
        # {(0,1,5),(1,0,6)} min 5 — bottleneck must pick the latter.
        g = BipartiteGraph.from_edges(
            [(0, 0, 1), (1, 1, 10), (0, 1, 5), (1, 0, 6)]
        )
        m = bottleneck_matching(g, require="perfect")
        assert m.min_weight() == 5

    def test_perfect_requires_square(self):
        g = BipartiteGraph.from_edges([(0, 0, 1), (1, 0, 1)])
        with pytest.raises(MatchingError):
            bottleneck_matching(g, require="perfect")

    def test_perfect_missing_raises(self):
        # Square but no perfect matching (both edges share right node 0).
        g = BipartiteGraph.from_edges([(0, 0, 1), (1, 0, 1)])
        g.add_right_node(1)
        with pytest.raises(MatchingError):
            bottleneck_matching(g, require="perfect")

    def test_ties_handled(self):
        g = BipartiteGraph.from_edges(
            [(0, 0, 3), (0, 1, 3), (1, 0, 3), (1, 1, 3)]
        )
        m = bottleneck_matching(g, require="perfect")
        assert len(m) == 2
        assert m.min_weight() == 3


class TestAgainstBruteForce:
    @given(bipartite_graphs(max_side=4, max_edges=8))
    @settings(max_examples=80, deadline=None)
    def test_bottleneck_is_optimal_for_maximum_matchings(self, g):
        target = len(hopcroft_karp(g))
        m = bottleneck_matching(g, require="maximum")
        m.validate(g)
        assert len(m) == target
        assert m.min_weight() == brute_force_best_bottleneck(g, target)

    @given(bipartite_graphs(max_side=4, max_edges=8))
    @settings(max_examples=40, deadline=None)
    def test_bottleneck_at_least_arbitrary(self, g):
        arbitrary = hopcroft_karp(g)
        best = bottleneck_matching(g)
        assert best.min_weight() >= 0
        assert len(best) == len(arbitrary)
