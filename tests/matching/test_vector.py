"""The array-based matching core mirrors the object-based one exactly.

``hopcroft_karp_vec`` promises *bit-identity* with ``hopcroft_karp`` —
same edge ids in the matching, same counters-worthy behaviour on the
``allowed`` filter and warm starts — because the exact ``'vector'``
engine substitutes it inside peel loops whose schedules must not
change.  ``bottleneck_matching(engine='vector')`` promises the same
against the default python engine.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.matching.bottleneck import bottleneck_matching
from repro.matching.hopcroft_karp import hopcroft_karp
from repro.matching.vector import hopcroft_karp_vec
from tests.conftest import bipartite_graphs


def edge_ids(matching):
    return sorted(e.id for e in matching.edges())


class TestHopcroftKarpVec:
    @given(bipartite_graphs(max_side=8, max_edges=24))
    @settings(max_examples=100, deadline=None)
    def test_identical_matching(self, g):
        assert edge_ids(hopcroft_karp_vec(g)) == edge_ids(hopcroft_karp(g))

    @given(bipartite_graphs(max_side=8, max_edges=24), st.randoms())
    @settings(max_examples=60, deadline=None)
    def test_identical_under_allowed_filter(self, g, rng):
        ids = g.edge_ids()
        allowed = {eid for eid in ids if rng.random() < 0.6}
        assert edge_ids(hopcroft_karp_vec(g, allowed=allowed)) == edge_ids(
            hopcroft_karp(g, allowed=allowed)
        )

    @given(bipartite_graphs(max_side=8, max_edges=24))
    @settings(max_examples=60, deadline=None)
    def test_identical_with_warm_start(self, g):
        seed = hopcroft_karp(g)
        assert edge_ids(hopcroft_karp_vec(g, initial=seed)) == edge_ids(
            hopcroft_karp(g, initial=seed)
        )

    @given(bipartite_graphs(max_side=8, max_edges=24))
    @settings(max_examples=40, deadline=None)
    def test_warm_start_with_stale_allowed_edges(self, g):
        # Warm matching containing edges outside `allowed` must be
        # pruned the same way by both implementations.
        seed = hopcroft_karp(g)
        allowed = set(g.edge_ids()[::2])
        assert edge_ids(hopcroft_karp_vec(g, allowed=allowed, initial=seed)) == (
            edge_ids(hopcroft_karp(g, allowed=allowed, initial=seed))
        )

    def test_posts_hk_counters(self, small_graph):
        with obs.observed() as (reg, _tr):
            hopcroft_karp_vec(small_graph)
        assert reg.counter("matching.hk.calls").value == 1
        assert reg.counter("matching.hk.bfs_phases").value >= 1


class TestBottleneckVectorEngine:
    @given(bipartite_graphs(max_side=7, max_edges=20))
    @settings(max_examples=100, deadline=None)
    def test_maximum_mode_identical(self, g):
        py = bottleneck_matching(g)
        vec = bottleneck_matching(g, engine="vector")
        assert edge_ids(py) == edge_ids(vec)

    @given(st.integers(0, 10**6), st.integers(2, 7))
    @settings(max_examples=60, deadline=None)
    def test_perfect_mode_identical(self, seed, n):
        from repro.graph.generators import random_weight_regular

        g = random_weight_regular(seed, n=n)
        py = bottleneck_matching(g, require="perfect")
        vec = bottleneck_matching(g, require="perfect", engine="vector")
        assert edge_ids(py) == edge_ids(vec)
        assert min(e.weight for e in py.edges()) == min(
            e.weight for e in vec.edges()
        )

    def test_probe_counters_posted(self):
        from repro.graph.generators import random_weight_regular

        g = random_weight_regular(3, n=5)
        with obs.observed() as (reg, _tr):
            bottleneck_matching(g, engine="vector")
        assert reg.counter("matching.bottleneck.calls").value == 1
        assert reg.counter("matching.bottleneck.threshold_probes").value >= 1
