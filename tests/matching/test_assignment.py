"""Tests for the pure-Python assignment solver (SciPy fallback)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matching.assignment import solve_assignment_max, solve_assignment_min
from repro.util.errors import MatchingError

scipy_lsa = pytest.importorskip("scipy.optimize").linear_sum_assignment


class TestBasics:
    def test_empty(self):
        assert solve_assignment_min(np.zeros((0, 0))) == []

    def test_single(self):
        assert solve_assignment_min(np.array([[3.0]])) == [0]

    def test_two_by_two(self):
        # Diagonal costs 1+1=2, anti-diagonal 5+5=10.
        c = np.array([[1.0, 5.0], [5.0, 1.0]])
        assert solve_assignment_min(c) == [0, 1]
        assert solve_assignment_max(c) == [1, 0]

    def test_forbidden_entries_avoided(self):
        inf = float("inf")
        c = np.array([[inf, 1.0], [1.0, inf]])
        assert solve_assignment_min(c) == [1, 0]

    def test_infeasible_raises(self):
        inf = float("inf")
        c = np.array([[inf, inf], [1.0, 1.0]])
        with pytest.raises(MatchingError):
            solve_assignment_min(c)

    def test_non_square_rejected(self):
        with pytest.raises(MatchingError):
            solve_assignment_min(np.ones((2, 3)))

    def test_nan_rejected(self):
        with pytest.raises(MatchingError):
            solve_assignment_min(np.array([[np.nan]]))

    def test_negative_costs(self):
        c = np.array([[-5.0, 0.0], [0.0, -5.0]])
        assert solve_assignment_min(c) == [0, 1]


class TestAgainstScipy:
    @given(st.integers(0, 10_000), st.integers(1, 8))
    @settings(max_examples=80, deadline=None)
    def test_min_cost_matches(self, seed, n):
        rng = np.random.default_rng(seed)
        c = rng.uniform(-10, 10, (n, n))
        mine = solve_assignment_min(c)
        assert sorted(mine) == list(range(n))
        row, col = scipy_lsa(c)
        my_cost = sum(c[i, mine[i]] for i in range(n))
        assert my_cost == pytest.approx(float(c[row, col].sum()))

    @given(st.integers(0, 10_000), st.integers(1, 8))
    @settings(max_examples=50, deadline=None)
    def test_max_score_matches(self, seed, n):
        rng = np.random.default_rng(seed)
        c = rng.uniform(0, 100, (n, n))
        mine = solve_assignment_max(c)
        row, col = scipy_lsa(c, maximize=True)
        my_score = sum(c[i, mine[i]] for i in range(n))
        assert my_score == pytest.approx(float(c[row, col].sum()))

    @given(st.integers(0, 10_000), st.integers(2, 6))
    @settings(max_examples=40, deadline=None)
    def test_integer_ties(self, seed, n):
        rng = np.random.default_rng(seed)
        c = rng.integers(0, 4, (n, n)).astype(float)
        mine = solve_assignment_min(c)
        row, col = scipy_lsa(c)
        assert sum(c[i, mine[i]] for i in range(n)) == pytest.approx(
            float(c[row, col].sum())
        )


class TestHungarianFallbackPath:
    def test_pure_python_path_used_without_scipy(self, monkeypatch):
        """hungarian_perfect_matching works when SciPy is 'absent'."""
        import repro.matching.hungarian as hungarian
        from repro.graph.generators import random_weight_regular

        monkeypatch.setattr(hungarian, "_scipy_lsa", None)
        g = random_weight_regular(5, n=5, layers=3)
        m = hungarian.hungarian_perfect_matching(g)
        assert m.is_perfect_in(g)
        # Same total weight as the SciPy path.
        monkeypatch.undo()
        m2 = hungarian.hungarian_perfect_matching(g)
        assert sum(e.weight for e in m) == sum(e.weight for e in m2)
