"""Tests for the Hungarian maximum-weight perfect matching."""

from itertools import permutations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.bipartite import BipartiteGraph
from repro.graph.generators import random_weight_regular
from repro.matching.hungarian import hungarian_perfect_matching
from repro.util.errors import MatchingError


def brute_force_max_weight(graph: BipartiteGraph) -> float:
    """Best total weight over all perfect matchings (tiny graphs)."""
    lefts = graph.left_nodes()
    rights = graph.right_nodes()
    best = None
    weight_of = {}
    for e in graph.edges():
        key = (e.left, e.right)
        weight_of[key] = max(weight_of.get(key, 0), e.weight)
    for perm in permutations(rights):
        total = 0.0
        ok = True
        for left, right in zip(lefts, perm):
            w = weight_of.get((left, right))
            if w is None:
                ok = False
                break
            total += w
        if ok and (best is None or total > best):
            best = total
    if best is None:
        raise AssertionError("no perfect matching")
    return best


class TestBasics:
    def test_empty_graph(self):
        assert len(hungarian_perfect_matching(BipartiteGraph())) == 0

    def test_single_edge(self):
        g = BipartiteGraph.from_edges([(0, 0, 3)])
        m = hungarian_perfect_matching(g)
        assert len(m) == 1

    def test_picks_max_weight(self):
        g = BipartiteGraph.from_edges(
            [(0, 0, 1), (1, 1, 1), (0, 1, 10), (1, 0, 10)]
        )
        m = hungarian_perfect_matching(g)
        assert sum(e.weight for e in m) == 20

    def test_parallel_edges_use_heaviest(self):
        g = BipartiteGraph.from_edges([(0, 0, 1), (0, 0, 5)])
        m = hungarian_perfect_matching(g)
        assert next(iter(m)).weight == 5

    def test_non_square_raises(self):
        g = BipartiteGraph.from_edges([(0, 0, 1), (1, 0, 1)])
        with pytest.raises(MatchingError):
            hungarian_perfect_matching(g)

    def test_no_perfect_matching_raises(self):
        g = BipartiteGraph.from_edges([(0, 0, 1), (1, 0, 1)])
        g.add_right_node(1)
        with pytest.raises(MatchingError):
            hungarian_perfect_matching(g)


class TestAgainstBruteForce:
    @given(st.integers(0, 500), st.integers(1, 5), st.integers(1, 3))
    @settings(max_examples=50, deadline=None)
    def test_max_weight_on_regular_graphs(self, seed, n, layers):
        g = random_weight_regular(seed, n=n, layers=layers)
        m = hungarian_perfect_matching(g)
        m.validate(g)
        assert m.is_perfect_in(g)
        assert sum(e.weight for e in m) == pytest.approx(
            brute_force_max_weight(g)
        )
