"""Warm-started peelers vs their stateless oracles, edge for edge."""

import pytest

from repro.graph.bipartite import BipartiteGraph
from repro.graph.generators import random_weight_regular
from repro.matching.bottleneck import bottleneck_matching
from repro.matching.hungarian import hungarian_perfect_matching
from repro.matching.peeler import BottleneckPeeler, HungarianPeeler
from repro.util.errors import MatchingError


def drive(graph: BipartiteGraph, next_matching) -> list[tuple[list[int], float]]:
    """Peel ``graph`` to exhaustion; returns (sorted edge ids, peel) per step."""
    out = []
    while not graph.is_empty():
        m = next_matching()
        peel = m.min_weight()
        out.append((sorted(e.id for e in m.edges()), float(peel)))
        for e in m.edges():
            graph.peel_weight(e.id, peel)
    return out


@pytest.mark.parametrize("seed", [0, 1, 7, 42, 99])
def test_replay_matches_stateless_bottleneck(seed):
    g = random_weight_regular(seed, n=6, layers=4)
    warm = g.copy()
    peeler = BottleneckPeeler(warm, mode="replay")
    got = drive(warm, peeler.next_matching)
    cold = g.copy()
    want = drive(cold, lambda: bottleneck_matching(cold, require="perfect"))
    assert got == want


@pytest.mark.parametrize("seed", [0, 3, 11, 64])
def test_hungarian_peeler_matches_stateless(seed):
    g = random_weight_regular(seed, n=5, layers=3)
    warm = g.copy()
    peeler = HungarianPeeler(warm)
    got = drive(warm, peeler.next_matching)
    cold = g.copy()
    want = drive(cold, lambda: hungarian_perfect_matching(cold))
    assert got == want


@pytest.mark.parametrize("seed", [0, 5, 23])
def test_resume_peels_to_exhaustion_with_perfect_matchings(seed):
    g = random_weight_regular(seed, n=6, layers=4)
    n = g.num_left
    peeler = BottleneckPeeler(g, mode="resume")
    bottlenecks = []
    while not g.is_empty():
        m = peeler.next_matching()
        assert len(m) == n  # perfect every peel
        peel = m.min_weight()
        bottlenecks.append(float(peel))
        for e in m.edges():
            g.peel_weight(e.id, peel)
    # The bottleneck value of a weight-regular graph never increases
    # across peels (any perfect matching of the peeled graph existed
    # before the peel with weights at least as large).
    assert bottlenecks == sorted(bottlenecks, reverse=True)


def test_bottleneck_peeler_rejects_unknown_mode():
    g = random_weight_regular(0, n=3)
    with pytest.raises(MatchingError):
        BottleneckPeeler(g, mode="psychic")


def test_single_edge_graph():
    g = BipartiteGraph.from_edges([(0, 0, 5)])
    peeler = BottleneckPeeler(g.copy(), mode="replay")
    m = peeler.next_matching()
    assert [e.weight for e in m.edges()] == [5]
