"""Tests for the Matching container."""

import pytest

from repro.graph.bipartite import BipartiteGraph, Edge
from repro.matching.base import Matching
from repro.util.errors import MatchingError


class TestMatchingContainer:
    def test_add_and_query(self):
        m = Matching([Edge(0, 0, 0, 2.0), Edge(1, 1, 1, 5.0)])
        assert len(m) == 2
        assert m.min_weight() == 2.0
        assert m.max_weight() == 5.0
        assert m.covers_left(0) and m.covers_right(1)
        assert m.edge_ids() == {0, 1}

    def test_conflicting_left_rejected(self):
        m = Matching([Edge(0, 0, 0, 1.0)])
        with pytest.raises(MatchingError):
            m.add(Edge(1, 0, 1, 1.0))

    def test_conflicting_right_rejected(self):
        m = Matching([Edge(0, 0, 0, 1.0)])
        with pytest.raises(MatchingError):
            m.add(Edge(1, 1, 0, 1.0))

    def test_discard_left(self):
        m = Matching([Edge(0, 0, 0, 1.0)])
        gone = m.discard_left(0)
        assert gone is not None and gone.id == 0
        assert len(m) == 0
        assert m.discard_left(0) is None

    def test_contains_is_identity_based(self):
        e = Edge(0, 0, 0, 1.0)
        m = Matching([e])
        assert e in m
        assert Edge(9, 0, 0, 1.0) not in m

    def test_edges_sorted_by_id(self):
        m = Matching([Edge(5, 0, 0, 1.0), Edge(2, 1, 1, 1.0)])
        assert [e.id for e in m.edges()] == [2, 5]

    def test_empty_weights(self):
        m = Matching()
        assert m.min_weight() == 0
        assert m.max_weight() == 0

    def test_is_perfect_in(self):
        g = BipartiteGraph.from_edges([(0, 0, 1), (1, 1, 1)])
        edges = {(e.left, e.right): e for e in g.edges()}
        full = Matching(edges.values())
        assert full.is_perfect_in(g)
        partial = Matching([edges[(0, 0)]])
        assert not partial.is_perfect_in(g)

    def test_validate_against_graph(self):
        g = BipartiteGraph.from_edges([(0, 0, 3)])
        edge = next(iter(g.edges()))
        m = Matching([edge])
        m.validate(g)
        g.remove_edge(edge.id)
        with pytest.raises(MatchingError):
            m.validate(g)

    def test_validate_accepts_peeled_weights(self):
        g = BipartiteGraph.from_edges([(0, 0, 3)])
        edge = next(iter(g.edges()))
        m = Matching([edge])
        g.decrease_weight(edge.id, 1)  # weight changed, endpoints same
        m.validate(g)

    def test_copy_independent(self):
        m = Matching([Edge(0, 0, 0, 1.0)])
        c = m.copy()
        c.discard_left(0)
        assert len(m) == 1 and len(c) == 0

    def test_repr(self):
        assert "size=1" in repr(Matching([Edge(0, 0, 0, 1.0)]))
