"""Tests for table formatting and CSV emission."""

import csv

from repro.analysis.tables import (
    csv_string,
    format_markdown,
    format_table,
    write_csv,
)

HEADERS = ("name", "value")
ROWS = [("alpha", 1.25), ("b", 10.5)]


class TestFormatTable:
    def test_alignment_and_floats(self):
        text = format_table(HEADERS, ROWS, floatfmt=".2f")
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "1.25" in text and "10.50" in text
        # all lines equal width padding
        assert len({len(l) for l in lines[:2]}) == 1

    def test_non_float_cells(self):
        text = format_table(("a",), [(True,), ("xyz",), (7,)])
        assert "True" in text and "xyz" in text and "7" in text


class TestMarkdown:
    def test_structure(self):
        text = format_markdown(HEADERS, ROWS)
        lines = text.splitlines()
        assert lines[0] == "| name | value |"
        assert lines[1] == "|---|---|"
        assert len(lines) == 4


class TestCsv:
    def test_write_and_read_back(self, tmp_path):
        path = tmp_path / "sub" / "out.csv"
        write_csv(path, HEADERS, ROWS)
        with path.open() as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == list(HEADERS)
        assert rows[1] == ["alpha", "1.25"]

    def test_csv_string(self):
        text = csv_string(HEADERS, ROWS)
        assert text.splitlines()[0] == "name,value"
        assert len(text.splitlines()) == 3
