"""Tests for the ASCII Gantt charts."""

from repro.analysis.gantt import gantt_async, gantt_sync
from repro.core.oggp import oggp
from repro.core.relax import relax_schedule
from repro.core.schedule import Schedule, Step, Transfer
from repro.graph.bipartite import BipartiteGraph


def sample_schedule() -> Schedule:
    return Schedule(
        [
            Step([Transfer(0, 0, 0, 4.0), Transfer(1, 1, 1, 4.0)]),
            Step([Transfer(2, 0, 1, 2.0)]),
        ],
        k=2,
        beta=1.0,
    )


class TestGanttSync:
    def test_rows_per_sender(self):
        text = gantt_sync(sample_schedule())
        lines = text.splitlines()
        assert any(l.startswith("s0") for l in lines)
        assert any(l.startswith("s1") for l in lines)

    def test_idle_shown_as_dots(self):
        text = gantt_sync(sample_schedule())
        s1_row = next(l for l in text.splitlines() if l.startswith("s1"))
        assert "." in s1_row  # s1 idles in step 2

    def test_destination_digits(self):
        text = gantt_sync(sample_schedule())
        s0_row = next(l for l in text.splitlines() if l.startswith("s0"))
        assert "0" in s0_row and "1" in s0_row

    def test_empty(self):
        assert gantt_sync(Schedule([], k=1, beta=0.0)) == "(empty schedule)"

    def test_real_schedule(self):
        g = BipartiteGraph.from_edges(
            [(0, 0, 5), (0, 1, 3), (1, 0, 2), (2, 2, 4)]
        )
        sched = oggp(g, k=2, beta=1.0)
        text = gantt_sync(sched)
        assert text.count("\n") == len({0, 1, 2})  # header + 3 senders


class TestGanttAsync:
    def test_contains_time_axis_and_rows(self):
        relaxed = relax_schedule(sample_schedule())
        text = gantt_async(relaxed)
        assert text.splitlines()[0].strip().startswith("0")
        assert any(l.startswith("s0") for l in text.splitlines())

    def test_empty(self):
        from repro.core.relax import AsyncSchedule

        assert gantt_async(AsyncSchedule([], k=1, beta=0.0)) == "(empty schedule)"

    def test_real_relaxation(self):
        g = BipartiteGraph.from_edges(
            [(0, 0, 5), (0, 1, 3), (1, 0, 2), (2, 2, 4)]
        )
        relaxed = relax_schedule(oggp(g, k=3, beta=0.5))
        text = gantt_async(relaxed)
        assert len(text.splitlines()) == 4  # header + 3 senders
