"""Tests for the ASCII plotter."""

import pytest

from repro.analysis.ascii_plot import ascii_plot


class TestAsciiPlot:
    def test_contains_markers_and_legend(self):
        text = ascii_plot([1, 2, 3], {"up": [1, 2, 3], "down": [3, 2, 1]})
        assert "*" in text and "+" in text
        assert "* up" in text and "+ down" in text

    def test_axis_labels(self):
        text = ascii_plot([0, 10], {"s": [5.0, 7.5]}, title="T")
        assert text.splitlines()[0] == "T"
        assert "7.5" in text and "5" in text

    def test_flat_series_does_not_crash(self):
        text = ascii_plot([1, 2], {"flat": [4.0, 4.0]})
        assert "flat" in text

    def test_single_point(self):
        text = ascii_plot([1], {"p": [2.0]})
        assert "p" in text

    def test_empty_returns_placeholder(self):
        assert ascii_plot([], {}) == "(no data)"

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot([1, 2], {"bad": [1.0]})

    def test_dimensions(self):
        text = ascii_plot([1, 2], {"s": [1.0, 2.0]}, width=40, height=8)
        rows = [l for l in text.splitlines() if "|" in l]
        assert len(rows) == 8
