"""Tests for SeriesStats, including the pooled-merge property."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import SeriesStats, summarize

floats = st.floats(-100, 100, allow_nan=False, allow_infinity=False)


class TestSummarize:
    def test_basic(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.count == 3
        assert s.mean == 2.0
        assert s.min == 1.0
        assert s.max == 3.0
        assert s.std == pytest.approx(math.sqrt(2 / 3))

    def test_single_value(self):
        s = summarize([5.0])
        assert s.std == 0.0
        assert s.mean == s.min == s.max == 5.0

    def test_empty(self):
        s = summarize([])
        assert s.count == 0
        assert math.isnan(s.mean)

    def test_to_dict(self):
        d = summarize([1.0, 1.0]).to_dict()
        assert d["count"] == 2 and d["mean"] == 1.0


class TestMerge:
    @given(
        st.lists(floats, min_size=1, max_size=20),
        st.lists(floats, min_size=1, max_size=20),
    )
    @settings(max_examples=80)
    def test_merge_equals_pooled(self, a, b):
        merged = summarize(a).merge(summarize(b))
        pooled = summarize(a + b)
        assert merged.count == pooled.count
        assert merged.mean == pytest.approx(pooled.mean, abs=1e-9)
        assert merged.std == pytest.approx(pooled.std, abs=1e-7)
        assert merged.min == pooled.min
        assert merged.max == pooled.max

    def test_merge_with_empty(self):
        s = summarize([1.0, 2.0])
        empty = summarize([])
        assert s.merge(empty) == s
        assert empty.merge(s) == s

    @given(st.lists(floats, min_size=1, max_size=10))
    @settings(max_examples=40)
    def test_merge_identity(self, values):
        s = summarize(values)
        doubled = s.merge(s)
        assert doubled.count == 2 * s.count
        assert doubled.mean == pytest.approx(s.mean, abs=1e-9)
