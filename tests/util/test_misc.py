"""Tests for timing helpers and the exception hierarchy."""

import time

import pytest

from repro.util.errors import (
    ConfigError,
    GraphError,
    MatchingError,
    ReproError,
    ScheduleError,
    SimulationError,
)
from repro.util.timing import Timer


class TestTimer:
    def test_accumulates(self):
        t = Timer()
        with t:
            time.sleep(0.01)
        with t:
            time.sleep(0.01)
        assert t.laps == 2
        assert t.elapsed >= 0.015
        assert t.mean == pytest.approx(t.elapsed / 2)

    def test_reset(self):
        t = Timer()
        with t:
            pass
        t.reset()
        assert t.elapsed == 0.0
        assert t.laps == 0
        assert t.mean == 0.0

    def test_nested_with_blocks_count_outer_interval_once(self):
        # The historical Timer clobbered its start mark on re-entry;
        # nesting must account the outermost interval exactly once.
        t = Timer()
        with t:
            time.sleep(0.005)
            with t:
                time.sleep(0.005)
        assert t.laps == 1
        assert t.elapsed >= 0.009

    def test_is_the_obs_timer(self):
        from repro.obs.metrics import TimerMetric

        assert Timer is TimerMetric


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "cls",
        [GraphError, MatchingError, ScheduleError, SimulationError, ConfigError],
    )
    def test_all_derive_from_repro_error(self, cls):
        assert issubclass(cls, ReproError)
        with pytest.raises(ReproError):
            raise cls("x")
