"""Tests for RNG stream derivation."""

import numpy as np
import pytest

from repro.util.rng import as_seed_sequence, derive_rng, spawn_streams


class TestDeriveRng:
    def test_int_seed_reproducible(self):
        a = derive_rng(42).random(5)
        b = derive_rng(42).random(5)
        assert np.array_equal(a, b)

    def test_path_separates_streams(self):
        a = derive_rng(42, 1).random(5)
        b = derive_rng(42, 2).random(5)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert derive_rng(g) is g

    def test_generator_with_path_derives_child(self):
        g = np.random.default_rng(0)
        child = derive_rng(g, 3)
        assert child is not g

    def test_none_gives_entropy(self):
        a = derive_rng(None).random(5)
        b = derive_rng(None).random(5)
        assert not np.array_equal(a, b)


class TestSpawnStreams:
    def test_count_and_independence(self):
        streams = spawn_streams(7, 5)
        assert len(streams) == 5
        draws = [s.random(4).tolist() for s in streams]
        assert len({tuple(d) for d in draws}) == 5

    def test_reproducible(self):
        a = [s.random(3).tolist() for s in spawn_streams(9, 3)]
        b = [s.random(3).tolist() for s in spawn_streams(9, 3)]
        assert a == b

    def test_prefix_stability(self):
        # The first streams are the same regardless of the total count.
        a = spawn_streams(1, 2)[0].random(4)
        b = spawn_streams(1, 10)[0].random(4)
        assert np.array_equal(a, b)

    def test_zero(self):
        assert spawn_streams(0, 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_streams(0, -1)


class TestSeedSequence:
    def test_builds_from_iterable(self):
        ss = as_seed_sequence([1, 2, 3])
        assert ss.entropy == (1, 2, 3)
