"""Tests for the kpbs CLI."""

import json

import numpy as np
import pytest

from repro.cli.main import build_parser, main
from repro.core.schedule import Schedule


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_experiment_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "nope"])


class TestExperimentsCommand:
    def test_lists_figures(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        for name in ("fig7", "fig8", "fig9", "fig10", "fig11"):
            assert name in out


class TestDemo:
    def test_demo_runs(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "GGP" in out and "OGGP" in out
        assert "lower bound 10" in out


class TestSchedule:
    def test_json_matrix(self, tmp_path, capsys):
        matrix = [[10.0, 0.0], [5.0, 20.0]]
        src = tmp_path / "m.json"
        src.write_text(json.dumps(matrix))
        out_path = tmp_path / "schedule.json"
        code = main([
            "schedule", "--input", str(src), "--k", "2", "--beta", "1",
            "--algorithm", "oggp", "--output", str(out_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "evaluation ratio" in out
        restored = Schedule.from_json(out_path.read_text())
        assert restored.k == 2

    def test_csv_matrix(self, tmp_path, capsys):
        src = tmp_path / "m.csv"
        np.savetxt(src, np.array([[4.0, 2.0], [0.0, 3.0]]), delimiter=",")
        assert main(["schedule", "--input", str(src), "--k", "1"]) == 0
        assert "Schedule" in capsys.readouterr().out

    def test_unknown_format_fails_cleanly(self, tmp_path, capsys):
        src = tmp_path / "m.txt"
        src.write_text("1 2")
        assert main(["schedule", "--input", str(src), "--k", "1"]) == 2
        assert "error" in capsys.readouterr().err


class TestRun:
    def test_fig7_quick_with_csv(self, tmp_path, capsys):
        out_csv = tmp_path / "fig7.csv"
        code = main(["run", "fig7", "--draws", "5", "--csv", str(out_csv)])
        assert code == 0
        assert out_csv.exists()
        out = capsys.readouterr().out
        assert "fig7" in out

    def test_ablation_steps(self, capsys):
        assert main(["run", "ablation_steps"]) == 0
        assert "oggp" in capsys.readouterr().out


class TestRunExtensions:
    def test_heterogeneity(self, capsys):
        assert main(["run", "heterogeneity"]) == 0
        out = capsys.readouterr().out
        assert "oggp+cap" in out

    def test_scalability(self, capsys):
        assert main(["run", "scalability"]) == 0
        assert "log-log slope" in capsys.readouterr().out


class TestReport:
    def test_single_experiment_to_file(self, tmp_path, capsys):
        out_md = tmp_path / "report.md"
        assert main(["report", "ablation_steps", "--out", str(out_md)]) == 0
        text = out_md.read_text()
        assert text.startswith("# K-PBS reproduction report")
        assert "ablation_steps" in text
        assert "| metric |" in text

    def test_stdout_when_no_out(self, capsys):
        assert main(["report", "ablation_steps"]) == 0
        assert "ablation_steps" in capsys.readouterr().out


class TestVerify:
    def test_valid_schedule_passes(self, tmp_path, capsys):
        matrix = [[10.0, 0.0], [5.0, 20.0]]
        m = tmp_path / "m.json"
        m.write_text(json.dumps(matrix))
        s = tmp_path / "s.json"
        main(["schedule", "--input", str(m), "--k", "2", "--beta", "1",
              "--output", str(s)])
        capsys.readouterr()
        assert main(["verify", "--matrix", str(m), "--schedule", str(s)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_broken_schedule_fails_with_details(self, tmp_path, capsys):
        matrix = [[10.0, 0.0], [5.0, 20.0]]
        m = tmp_path / "m.json"
        m.write_text(json.dumps(matrix))
        s = tmp_path / "s.json"
        main(["schedule", "--input", str(m), "--k", "2", "--beta", "1",
              "--output", str(s)])
        capsys.readouterr()
        data = json.loads(s.read_text())
        del data["steps"][0]  # drop a step -> under-delivery
        s.write_text(json.dumps(data))
        assert main(["verify", "--matrix", str(m), "--schedule", str(s)]) == 1
        out = capsys.readouterr().out
        assert "under_delivered" in out


class TestSimulate:
    def test_small_simulation(self, capsys):
        code = main(["simulate", "--k", "3", "--max-mb", "11", "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "bruteforce" in out and "oggp" in out and "gain" in out


class TestResilienceFlags:
    def test_simulate_with_faults_recovers(self, capsys):
        code = main([
            "simulate", "--k", "3", "--max-mb", "11", "--seed", "1",
            "--faults", "seed=2,transfer=0.3,degrade=0.2", "--retries", "8",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "recovered in" in out
        assert "oggp" in out

    def test_simulate_fault_free_spec_prints_no_recovery(self, capsys):
        code = main([
            "simulate", "--k", "3", "--max-mb", "11", "--seed", "1",
            "--faults", "seed=2,transfer=0,stall=0",
        ])
        assert code == 0
        assert "recovered in" not in capsys.readouterr().out

    def test_bad_faults_spec_fails_cleanly(self, capsys):
        code = main([
            "simulate", "--k", "3", "--max-mb", "11",
            "--faults", "bogus=1",
        ])
        assert code == 2
        assert "bad --faults entry" in capsys.readouterr().err

    def test_run_recovery_overhead(self, capsys):
        code = main(["run", "recovery_overhead", "--retries", "6"])
        assert code == 0
        out = capsys.readouterr().out
        assert "overhead %" in out
        assert "recovery rounds" in out

    def test_run_rejects_flags_the_experiment_cannot_take(self, capsys):
        code = main(["run", "fig7", "--faults", "0.2"])
        assert code == 2
        assert "does not support --faults" in capsys.readouterr().err

    def test_parser_accepts_task_timeout(self):
        args = build_parser().parse_args([
            "simulate", "--task-timeout", "30", "--retries", "2",
        ])
        assert args.task_timeout == 30.0
        # --retries is a spec string (bare counts stay valid).
        assert args.retries == "2"

    def test_retries_spec_reaches_the_policy(self):
        from repro.cli.main import _parse_retry

        policy = _parse_retry("attempts=5,max-elapsed=30", 12.0)
        assert policy.max_attempts == 5
        assert policy.max_elapsed == 30.0
        assert policy.task_timeout == 12.0
        # Historical integer form (old run.json files store ints).
        assert _parse_retry(4, None).max_attempts == 4


class TestObservabilityFlags:
    def _matrix(self, tmp_path):
        src = tmp_path / "m.json"
        src.write_text(json.dumps([[10.0, 0.0], [5.0, 20.0]]))
        return src

    def test_schedule_profile_and_trace(self, tmp_path, capsys):
        profile = tmp_path / "p.json"
        trace = tmp_path / "t.trace.json"
        code = main([
            "schedule", "--input", str(self._matrix(tmp_path)), "--k", "2",
            "--beta", "1", "--profile", str(profile), "--trace", str(trace),
        ])
        assert code == 0
        snapshot = json.loads(profile.read_text())
        assert snapshot["ggp.calls"]["value"] == 1
        assert any(name.startswith("matching.") for name in snapshot)
        assert snapshot["schedule.evaluation_ratio"]["value"] >= 1.0
        events = json.loads(trace.read_text())["traceEvents"]
        assert {"name", "ph", "ts", "dur", "pid", "tid"} <= set(events[0])
        assert any(e["name"] == "ggp.regularize" for e in events)

    def test_schedule_output_json_carries_quality_keys(self, tmp_path, capsys):
        out_path = tmp_path / "s.json"
        main(["schedule", "--input", str(self._matrix(tmp_path)), "--k", "2",
              "--beta", "1", "--output", str(out_path)])
        doc = json.loads(out_path.read_text())
        assert doc["evaluation_ratio"] == doc["cost"] / doc["lower_bound"]
        Schedule.from_dict(doc)  # extra keys don't break deserialisation

    def test_simulate_profile_has_netsim_metrics(self, tmp_path, capsys):
        profile = tmp_path / "p.json"
        code = main(["simulate", "--k", "3", "--max-mb", "11", "--seed", "1",
                     "--profile", str(profile)])
        assert code == 0
        snapshot = json.loads(profile.read_text())
        assert "netsim.step_duration" in snapshot
        assert snapshot["netsim.backbone_utilization"]["count"] > 0

    def test_observability_off_after_run(self, tmp_path, capsys):
        from repro import obs

        main(["schedule", "--input", str(self._matrix(tmp_path)), "--k", "2",
              "--profile", str(tmp_path / "p.json")])
        assert not obs.enabled()


class TestStats:
    def test_stats_renders_profile_and_trace(self, tmp_path, capsys):
        matrix = tmp_path / "m.json"
        matrix.write_text(json.dumps([[10.0, 0.0], [5.0, 20.0]]))
        profile = tmp_path / "p.json"
        trace = tmp_path / "t.trace.json"
        main(["schedule", "--input", str(matrix), "--k", "2",
              "--profile", str(profile), "--trace", str(trace)])
        capsys.readouterr()
        code = main(["stats", str(profile), "--trace", str(trace)])
        assert code == 0
        out = capsys.readouterr().out
        assert "ggp.calls" in out
        assert "metric" in out and "type" in out
        assert "ggp.regularize" in out  # flame summary frame

    def test_stats_without_inputs_fails_cleanly(self, capsys):
        assert main(["stats"]) == 2
        assert "error" in capsys.readouterr().err

    def test_stats_rejects_wrong_file_type(self, tmp_path, capsys):
        trace = tmp_path / "t.trace.json"
        trace.write_text(json.dumps({"traceEvents": []}))
        assert main(["stats", str(trace)]) == 2  # trace passed as profile
        assert "not a metrics snapshot" in capsys.readouterr().err

    def test_stats_missing_file_fails_cleanly(self, capsys):
        assert main(["stats", "nope.json"]) == 2
        assert "not found" in capsys.readouterr().err

    def test_stats_reads_live_endpoint(self, capsys):
        from repro import obs
        from repro.obs.server import MetricsServer

        with obs.observed() as (reg, _):
            reg.counter("live.counter").inc(4)
            with MetricsServer(port=0) as server:
                assert main(["stats", server.url]) == 0
        out = capsys.readouterr().out
        assert "live.counter" in out

    def test_stats_unreachable_endpoint_fails_cleanly(self, capsys):
        assert main(["stats", "http://127.0.0.1:9/"]) == 2
        assert "cannot reach" in capsys.readouterr().err

    def test_stats_diff_prints_deltas(self, tmp_path, capsys):
        before = tmp_path / "a.json"
        after = tmp_path / "b.json"
        before.write_text(json.dumps({
            "c": {"type": "counter", "value": 1},
            "t": {"type": "timer", "elapsed": 1.0, "laps": 2},
        }))
        after.write_text(json.dumps({
            "c": {"type": "counter", "value": 5},
            "t": {"type": "timer", "elapsed": 3.5, "laps": 6},
            "h": {"type": "histogram", "count": 2, "total": 7.0},
        }))
        assert main(["stats", "--diff", str(before), str(after)]) == 0
        out = capsys.readouterr().out
        assert "delta" in out
        lines = {l.split()[0]: l for l in out.splitlines() if l and l[0] != "-"}
        assert "4" in lines["c"]
        assert "2.5" in lines["t"]
        assert "h" in lines

    def test_stats_diff_identical_snapshots(self, tmp_path, capsys):
        snap = tmp_path / "s.json"
        snap.write_text(json.dumps({"c": {"type": "counter", "value": 3}}))
        assert main(["stats", "--diff", str(snap), str(snap)]) == 0
        assert "no differences" in capsys.readouterr().out


class TestMetricsPortFlag:
    def test_run_serves_metrics_and_stops_after(self, capsys):
        import re
        import urllib.error
        import urllib.request

        # A tiny run; the server must be live during, gone after.
        assert main([
            "schedule", "--input", "/dev/null", "--k", "1",
            "--metrics-port", "0",
        ]) == 2  # /dev/null is not a matrix — but the server line printed
        out = capsys.readouterr().out
        match = re.search(r"serving metrics on (http://\S+)", out)
        assert match, out
        with pytest.raises(urllib.error.URLError):
            urllib.request.urlopen(match.group(1) + "/healthz", timeout=2)

    def test_demo_with_metrics_port_and_events(self, tmp_path, capsys):
        events_path = tmp_path / "events.jsonl"
        assert main([
            "demo", "--metrics-port", "0", "--events", str(events_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "serving metrics on http://" in out
        assert f"wrote {events_path}" in out
        assert events_path.exists()


class TestTop:
    def test_top_renders_live_endpoint(self, capsys):
        from repro import obs
        from repro.obs.server import MetricsServer

        with obs.observed() as (reg, _):
            reg.counter("schedule_cache.hits").inc(2)
            reg.counter("schedule_cache.misses").inc(2)
            obs.emit("run.start", k=3, method="oggp")
            with MetricsServer(port=0) as server:
                code = main([
                    "top", server.url, "--interval", "0.05",
                    "--iterations", "2", "--no-clear",
                ])
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("kpbs top") == 2  # two frames, no ANSI clear
        assert "cache hit rate: 50.0%" in out
        assert "run.start" in out
        assert "/s" in out  # second frame switches to a rate

    def test_top_unreachable_endpoint_fails_cleanly(self, capsys):
        assert main(["top", "http://127.0.0.1:9/", "--iterations", "1"]) == 2
        assert "cannot reach" in capsys.readouterr().err

    def test_top_rejects_bad_interval(self, capsys):
        assert main([
            "top", "http://127.0.0.1:9/", "--interval", "0",
        ]) == 2
        assert "interval" in capsys.readouterr().err


class TestTransfer:
    FAST = ["--nic-mbit", "100000", "--backbone-mbit", "100000",
            "--payload-kb", "16", "--n1", "2", "--n2", "2", "--k", "2"]

    def digest(self, out):
        for line in out.splitlines():
            if line.startswith("digest:"):
                return line.split()[-1]
        raise AssertionError(f"no digest line in {out!r}")

    def test_transfer_without_checkpoint(self, capsys):
        assert main(["transfer", "--seed", "3", *self.FAST]) == 0
        out = capsys.readouterr().out
        assert "complete:  True" in out
        assert len(self.digest(out)) == 64

    def test_transfer_writes_resumable_checkpoint(self, tmp_path, capsys):
        from repro.resilience import load_checkpoint

        ckdir = tmp_path / "ck"
        assert main(["transfer", "--seed", "3", "--checkpoint-dir",
                     str(ckdir), *self.FAST]) == 0
        capsys.readouterr()
        assert (ckdir / "run.json").is_file()
        state = load_checkpoint(ckdir)
        assert state.complete
        config = json.loads((ckdir / "run.json").read_text())
        assert config["seed"] == 3

    def test_digest_is_deterministic(self, capsys):
        main(["transfer", "--seed", "3", *self.FAST])
        first = self.digest(capsys.readouterr().out)
        main(["transfer", "--seed", "3", *self.FAST])
        assert self.digest(capsys.readouterr().out) == first
        main(["transfer", "--seed", "4", *self.FAST])
        assert self.digest(capsys.readouterr().out) != first


class TestResume:
    FAST = TestTransfer.FAST
    FAULTS = ["--faults", "seed=9,transfer=0.35"]

    def test_resume_completes_partial_run(self, tmp_path, capsys):
        ckdir = str(tmp_path / "ck")
        # Uninterrupted reference digest.
        assert main(["transfer", "--seed", "5", *self.FAST, *self.FAULTS,
                     "--retries", "8"]) == 0
        reference = TestTransfer.digest(self, capsys.readouterr().out)
        # "Crashed" run: retry budget starved, checkpoint left behind.
        code = main(["transfer", "--seed", "5", "--checkpoint-dir", ckdir,
                     *self.FAST, *self.FAULTS, "--retries", "1"])
        partial_out = capsys.readouterr().out
        assert code == 1
        assert "complete:  False" in partial_out
        # Resume re-reads faults/retries from run.json (overridable).
        assert main(["resume", "--checkpoint-dir", ckdir,
                     "--retries", "8"]) == 0
        out = capsys.readouterr().out
        assert "complete:  True" in out
        assert TestTransfer.digest(self, out) == reference

    def test_resume_without_run_config_fails_cleanly(self, tmp_path, capsys):
        assert main(["resume", "--checkpoint-dir", str(tmp_path)]) == 2
        assert "run.json" in capsys.readouterr().err


class TestWatch:
    FAST = ["--n1", "6", "--n2", "6", "--k", "2", "--max-mb", "8"]
    CHURN = ["--churn", "seed=11,inject=1,remove=1,resize=1,events=2"]
    FAULTS = ["--faults", "seed=9,transfer=0.35"]

    def digest(self, out):
        return next(
            line.split()[-1]
            for line in out.splitlines()
            if line.startswith("digest:")
        )

    def test_watch_completes(self, capsys):
        assert main(["watch", "--seed", "7", *self.FAST, *self.CHURN]) == 0
        out = capsys.readouterr().out
        assert "complete:  True" in out
        assert "churn:" in out and "splices:" in out and "verified:" in out
        assert "round " in out  # per-round lines unless --quiet

    def test_quiet_suppresses_round_lines(self, capsys):
        assert main(
            ["watch", "--seed", "7", "--quiet", *self.FAST, *self.CHURN]
        ) == 0
        assert "round " not in capsys.readouterr().out

    def test_digest_is_deterministic(self, capsys):
        main(["watch", "--seed", "7", *self.FAST, *self.CHURN])
        first = self.digest(capsys.readouterr().out)
        main(["watch", "--seed", "7", *self.FAST, *self.CHURN])
        assert self.digest(capsys.readouterr().out) == first
        main(["watch", "--seed", "8", *self.FAST, *self.CHURN])
        assert self.digest(capsys.readouterr().out) != first

    def test_bad_churn_spec_fails_cleanly(self, capsys):
        assert main(["watch", "--churn", "bogus=1", *self.FAST]) == 2
        assert "churn" in capsys.readouterr().err

    def test_retries_spec_accepted(self, capsys):
        assert main(
            ["watch", "--seed", "7", *self.FAST, *self.CHURN,
             "--retries", "attempts=4,max-elapsed=60"]
        ) == 0
        capsys.readouterr()

    def test_bad_retries_spec_fails_cleanly(self, capsys):
        assert main(
            ["watch", *self.FAST, "--retries", "bogus=1"]
        ) == 2
        assert "retries" in capsys.readouterr().err

    def test_bad_repair_bounds_fail_cleanly(self, capsys):
        # Rejected even when the churn draw never triggers a repair.
        quiet = ["--churn", "seed=1,events=1"]
        assert main(
            ["watch", *self.FAST, *quiet, "--max-affected", "1.5"]
        ) == 2
        assert "max_affected_frac" in capsys.readouterr().err
        assert main(
            ["watch", *self.FAST, *quiet, "--max-ratio", "0.5"]
        ) == 2
        assert "max_ratio" in capsys.readouterr().err

    def test_resume_dispatches_to_watch(self, tmp_path, capsys):
        ckdir = str(tmp_path / "ck")
        # Uninterrupted reference digest.
        assert main(
            ["watch", "--seed", "5", *self.FAST, *self.CHURN, *self.FAULTS,
             "--retries", "50"]
        ) == 0
        reference = self.digest(capsys.readouterr().out)
        # "Crashed" run: retry budget starved, checkpoint left behind.
        code = main(
            ["watch", "--seed", "5", "--checkpoint-dir", ckdir,
             *self.FAST, *self.CHURN, *self.FAULTS, "--retries", "1"]
        )
        partial = capsys.readouterr().out
        if code == 0:  # fault draw never hit a transfer; nothing to resume
            assert self.digest(partial) == reference
            return
        assert "complete:  False" in partial
        # Resume re-reads churn/faults/retries from run.json (overridable).
        assert main(
            ["resume", "--checkpoint-dir", ckdir, "--retries", "50"]
        ) == 0
        out = capsys.readouterr().out
        assert "complete:  True" in out
        assert self.digest(out) == reference
