"""Smoke tests: every shipped example must run to completion."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, timeout: float = 240.0) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "lower bound" in out
        assert "OGGP" in out

    def test_block_cyclic(self):
        out = run_example("block_cyclic_redistribution.py")
        assert "OGGP" in out
        assert "ratio" in out

    def test_ss_tdma(self):
        out = run_example("ss_tdma_switch.py")
        assert "reconstruction check passed" in out

    def test_inprocess_cluster(self):
        out = run_example("inprocess_cluster.py")
        assert "verified" in out

    def test_fft_transpose(self):
        out = run_example("fft_transpose.py")
        assert "gather" in out and "all-to-all" in out

    @pytest.mark.slow
    def test_code_coupling(self):
        out = run_example("code_coupling.py")
        assert "gain_vs_brute" in out

    @pytest.mark.slow
    def test_dynamic_scenarios(self):
        out = run_example("dynamic_scenarios.py")
        assert "Barrier relaxation" in out
        assert "adaptive gain" in out

    @pytest.mark.slow
    def test_backbone_comparison(self):
        out = run_example("backbone_comparison.py", timeout=400.0)
        assert "fig10" in out and "fig11" in out

    @pytest.mark.slow
    def test_reproduce_paper_driver(self, tmp_path):
        report = tmp_path / "report.md"
        result = subprocess.run(
            [sys.executable, str(EXAMPLES / "reproduce_paper.py"), str(report)],
            capture_output=True, text=True, timeout=400,
        )
        assert result.returncode == 0, result.stderr[-2000:]
        text = report.read_text()
        for fig in ("fig7", "fig8", "fig9", "fig10", "fig11"):
            assert fig in text
