"""Tests for the exact solver, and the LB <= OPT <= heuristic sandwich."""

import pytest
from hypothesis import given, settings

from repro.core.bounds import lower_bound
from repro.core.exact import exact_cost, exact_schedule
from repro.core.ggp import ggp
from repro.core.oggp import oggp
from repro.graph.bipartite import BipartiteGraph
from repro.util.errors import ConfigError
from tests.conftest import bipartite_graphs


class TestExactBasics:
    def test_single_edge(self):
        g = BipartiteGraph.from_edges([(0, 0, 5)])
        assert exact_cost(g, k=1, beta=1.0) == 6.0

    def test_two_disjoint_edges_one_step(self):
        g = BipartiteGraph.from_edges([(0, 0, 5), (1, 1, 5)])
        assert exact_cost(g, k=2, beta=1.0) == 6.0

    def test_two_disjoint_edges_k1(self):
        g = BipartiteGraph.from_edges([(0, 0, 5), (1, 1, 5)])
        assert exact_cost(g, k=1, beta=1.0) == 12.0

    def test_conflicting_edges_need_two_steps(self):
        g = BipartiteGraph.from_edges([(0, 0, 3), (0, 1, 4)])
        assert exact_cost(g, k=2, beta=1.0) == 9.0

    def test_preemption_helps(self):
        # Star + heavy opposite edge: splitting beats any non-preemptive
        # placement when beta is small.
        g = BipartiteGraph.from_edges([(0, 0, 4), (0, 1, 4), (1, 0, 8)])
        cost = exact_cost(g, k=2, beta=0.0)
        assert cost == pytest.approx(12.0)  # = W(G) at node 0/left1

    def test_fig2_optimum(self, fig2_graph):
        assert exact_cost(fig2_graph, k=3, beta=1.0) == 10.0

    def test_schedule_matches_cost_and_is_valid(self, fig2_graph):
        s = exact_schedule(fig2_graph, k=3, beta=1.0)
        s.validate(fig2_graph)
        assert s.cost == exact_cost(fig2_graph, k=3, beta=1.0)

    def test_empty(self):
        assert exact_cost(BipartiteGraph(), k=1, beta=1.0) == 0.0
        assert exact_schedule(BipartiteGraph(), k=1, beta=1.0).num_steps == 0

    def test_rejects_float_weights(self):
        g = BipartiteGraph.from_edges([(0, 0, 1.5)])
        with pytest.raises(ConfigError):
            exact_cost(g, k=1, beta=1.0)

    def test_rejects_large_instances(self):
        g = BipartiteGraph.from_edges([(i, j, 1) for i in range(3) for j in range(3)])
        with pytest.raises(ConfigError):
            exact_cost(g, k=2, beta=1.0, max_edges=8)


class TestSandwich:
    @given(bipartite_graphs(max_side=3, max_edges=4, max_weight=4))
    @settings(max_examples=60, deadline=None)
    def test_lb_le_opt_le_heuristics(self, g):
        for k in (1, 2, 3):
            beta = 1.0
            opt = exact_cost(g, k=k, beta=beta)
            bound = lower_bound(g, k, beta)
            assert bound <= opt + 1e-9
            assert opt <= ggp(g, k, beta).cost + 1e-9
            assert opt <= oggp(g, k, beta).cost + 1e-9

    @given(bipartite_graphs(max_side=3, max_edges=4, max_weight=4))
    @settings(max_examples=30, deadline=None)
    def test_schedule_cost_equals_reported_cost(self, g):
        s = exact_schedule(g, k=2, beta=1.0)
        s.validate(g)
        assert s.cost == pytest.approx(exact_cost(g, k=2, beta=1.0))
