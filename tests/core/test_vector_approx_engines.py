"""The ``'vector'`` and ``'approx'`` peeling engines keep their promises.

``'vector'`` is an *exact* engine: bit-identical schedules to
``'fast'`` (and therefore to ``'reference'``) on every input — it only
changes how the matchings are searched, never which matchings are
found.  ``'approx'`` (Etzold-style dense-graph sparsification) promises
a *valid* schedule with bounded quality loss, not identity.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import evaluation_ratio, lower_bound
from repro.core.ggp import ggp
from repro.core.oggp import oggp
from repro.core.wrgp import EXACT_ENGINES, VALID_ENGINES, wrgp
from repro.graph.generators import random_bipartite, random_weight_regular
from tests.conftest import bipartite_graphs, betas, ks

strategies = st.sampled_from(["arbitrary", "max_weight", "bottleneck"])


class TestVectorBitIdentity:
    @given(bipartite_graphs(), ks, betas, strategies)
    @settings(max_examples=50, deadline=None)
    def test_ggp_identical_schedule(self, g, k, beta, matching):
        vec = ggp(g, k, beta, matching=matching, engine="vector")
        fast = ggp(g, k, beta, matching=matching, engine="fast")
        assert vec.to_dict() == fast.to_dict()
        vec.validate(g)

    @given(bipartite_graphs(), ks, betas)
    @settings(max_examples=50, deadline=None)
    def test_oggp_identical_schedule(self, g, k, beta):
        vec = oggp(g, k, beta, engine="vector")
        ref = oggp(g, k, beta, engine="reference")
        assert vec.to_dict() == ref.to_dict()
        vec.validate(g)

    @given(st.integers(0, 10**6), st.integers(2, 7), betas, strategies)
    @settings(max_examples=50, deadline=None)
    def test_wrgp_identical_schedule(self, seed, n, beta, matching):
        g = random_weight_regular(seed, n=n)
        vec = wrgp(g, beta=beta, matching=matching, engine="vector")
        fast = wrgp(g, beta=beta, matching=matching, engine="fast")
        assert vec.to_dict() == fast.to_dict()
        vec.validate(g)

    @pytest.mark.parametrize("seed", [12345, 777, 31])
    @pytest.mark.parametrize("algorithm", [ggp, oggp])
    def test_golden_medium_instances(self, algorithm, seed):
        # Larger fixed instances than hypothesis reaches: the regime the
        # numpy BFS and probe skipping actually fire in.
        g = random_bipartite(seed, max_side=40, max_edges=1600)
        vec = algorithm(g, 10, 1.0, engine="vector")
        fast = algorithm(g, 10, 1.0, engine="fast")
        assert vec.to_dict() == fast.to_dict()
        vec.validate(g)


class TestApproxEngine:
    @given(bipartite_graphs(), ks, betas)
    @settings(max_examples=50, deadline=None)
    def test_oggp_approx_is_valid(self, g, k, beta):
        schedule = oggp(g, k, beta, engine="approx")
        schedule.validate(g)

    @given(bipartite_graphs(), ks, betas, strategies)
    @settings(max_examples=40, deadline=None)
    def test_ggp_approx_is_valid(self, g, k, beta, matching):
        schedule = ggp(g, k, beta, matching=matching, engine="approx")
        schedule.validate(g)

    @pytest.mark.parametrize("seed", [12345, 777, 31])
    def test_bounded_quality_loss(self, seed):
        # Empirically the gap is ~±3%; the assertion leaves slack but
        # still catches a broken sparsifier (which degrades far past 2x).
        g = random_bipartite(seed, max_side=30, max_edges=900)
        fast = oggp(g, 10, 1.0, engine="fast")
        approx = oggp(g, 10, 1.0, engine="approx")
        approx.validate(g)
        assert approx.cost <= 1.5 * fast.cost
        bound = lower_bound(g, 10, 1.0)
        assert evaluation_ratio(approx.cost, bound) <= 2.0

    def test_approx_differs_only_in_choice_not_volume(self):
        g = random_bipartite(7, max_side=20, max_edges=400)
        fast = oggp(g, 5, 1.0, engine="fast")
        approx = oggp(g, 5, 1.0, engine="approx")
        moved = lambda s: sum(  # noqa: E731
            t.amount for st_ in s.steps for t in st_.transfers
        )
        assert moved(approx) == moved(fast)


class TestEngineRegistry:
    def test_new_engines_registered(self):
        assert {"vector", "approx"} <= set(VALID_ENGINES)
        assert "vector" in EXACT_ENGINES
        assert "approx" not in EXACT_ENGINES
