"""Tests for the Birkhoff–von Neumann decomposition."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bvn import birkhoff_von_neumann, is_doubly_stochastic, reconstruct
from repro.util.errors import GraphError


def random_regular_matrix(rng: np.random.Generator, n: int, layers: int) -> np.ndarray:
    """Convex-ish combination of permutation matrices (integer weights)."""
    out = np.zeros((n, n))
    for _ in range(layers):
        perm = rng.permutation(n)
        out[np.arange(n), perm] += float(rng.integers(1, 9))
    return out


class TestDecomposition:
    def test_identity(self):
        parts = birkhoff_von_neumann(np.eye(3) * 5)
        assert parts == [(5.0, (0, 1, 2))]

    def test_docstring_example(self):
        parts = birkhoff_von_neumann(np.array([[2.0, 1.0], [1.0, 2.0]]))
        assert sorted(parts) == [(1.0, (1, 0)), (2.0, (0, 1))]

    def test_zero_matrix(self):
        assert birkhoff_von_neumann(np.zeros((3, 3))) == []

    def test_reconstruction_exact(self):
        rng = np.random.default_rng(0)
        for n, layers in ((2, 2), (4, 3), (6, 5)):
            m = random_regular_matrix(rng, n, layers)
            parts = birkhoff_von_neumann(m)
            assert np.allclose(reconstruct(parts, n), m)

    def test_count_bound(self):
        # Birkhoff: at most (n-1)^2 + 1 permutations are needed; WRGP
        # peels at most one per edge, i.e. <= n^2, and usually far fewer.
        rng = np.random.default_rng(1)
        n = 5
        m = random_regular_matrix(rng, n, 6)
        parts = birkhoff_von_neumann(m)
        assert len(parts) <= int(np.count_nonzero(m))

    def test_permutations_are_permutations(self):
        rng = np.random.default_rng(2)
        m = random_regular_matrix(rng, 5, 4)
        for coefficient, perm in birkhoff_von_neumann(m):
            assert coefficient > 0
            assert sorted(perm) == list(range(5))

    def test_doubly_stochastic_input(self):
        # Average of 3 permutation matrices, scaled to row sums 1.
        rng = np.random.default_rng(3)
        m = random_regular_matrix(rng, 4, 3)
        m = m / m.sum(axis=1)[0]
        assert is_doubly_stochastic(m)
        parts = birkhoff_von_neumann(m)
        assert sum(c for c, _ in parts) == pytest.approx(1.0)
        assert np.allclose(reconstruct(parts, 4), m)

    @given(st.integers(0, 500), st.integers(1, 5), st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_property_reconstruction(self, seed, n, layers):
        m = random_regular_matrix(np.random.default_rng(seed), n, layers)
        parts = birkhoff_von_neumann(m)
        assert np.allclose(reconstruct(parts, n), m)


class TestValidation:
    def test_non_square_rejected(self):
        with pytest.raises(GraphError):
            birkhoff_von_neumann(np.ones((2, 3)))

    def test_negative_rejected(self):
        with pytest.raises(GraphError):
            birkhoff_von_neumann(np.array([[1.0, -1.0], [-1.0, 1.0]]))

    def test_irregular_rejected(self):
        with pytest.raises(GraphError, match="not weight-regular"):
            birkhoff_von_neumann(np.array([[1.0, 0.0], [0.0, 2.0]]))

    def test_reconstruct_length_mismatch(self):
        with pytest.raises(GraphError):
            reconstruct([(1.0, (0, 1))], n=3)


class TestIsDoublyStochastic:
    def test_positive_case(self):
        assert is_doubly_stochastic(np.full((3, 3), 1 / 3))

    def test_negative_cases(self):
        assert not is_doubly_stochastic(np.ones((2, 3)))
        assert not is_doubly_stochastic(np.array([[0.5, 0.5], [0.6, 0.4]]))
        assert not is_doubly_stochastic(np.array([[1.5, -0.5], [-0.5, 1.5]]))
