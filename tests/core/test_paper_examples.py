"""Checks against numbers stated in the paper itself."""

import pytest

from repro.core.bounds import lower_bound
from repro.core.ggp import ggp
from repro.core.oggp import oggp
from repro.core.schedule import Schedule, Step, Transfer
from repro.graph.generators import paper_figure2_graph
from repro.netsim.topology import NetworkSpec


class TestFigure2:
    """Figure 2: example solution with k=3, beta=1, total cost 15."""

    def test_papers_illustrated_schedule_is_feasible(self):
        g = paper_figure2_graph()
        ids = {(e.left, e.right): e.id for e in g.edges()}
        # Steps (1+5) + (1+3) + (1+4) = 15, with the weight-8 edge
        # preempted into two chunks of 4.
        schedule = Schedule(
            [
                Step(
                    [
                        Transfer(ids[(0, 0)], 0, 0, 4),
                        Transfer(ids[(1, 1)], 1, 1, 5),
                        Transfer(ids[(2, 2)], 2, 2, 3),
                    ]
                ),
                Step(
                    [
                        Transfer(ids[(1, 2)], 1, 2, 3),
                        Transfer(ids[(2, 1)], 2, 1, 3),
                    ]
                ),
                Step(
                    [
                        Transfer(ids[(0, 0)], 0, 0, 4),
                        Transfer(ids[(2, 2)], 2, 2, 1),
                    ]
                ),
            ],
            k=3,
            beta=1.0,
        )
        schedule.validate(g)
        assert schedule.cost == 15.0

    def test_our_algorithms_do_at_least_as_well(self):
        g = paper_figure2_graph()
        for algorithm in (ggp, oggp):
            s = algorithm(g, k=3, beta=1.0)
            s.validate(g)
            assert s.cost <= 15.0

    def test_lower_bound_value(self):
        assert lower_bound(paper_figure2_graph(), 3, 1.0) == 10.0


class TestSection21Example:
    """§2.1: n1=200, n2=100, t1=10, t2=100, T=1000 gives k=100, t=10."""

    def test_platform_derivation(self):
        spec = NetworkSpec(
            n1=200, n2=100, nic_rate1=10.0, nic_rate2=100.0,
            backbone_rate=1000.0,
        )
        assert spec.k == 100
        assert spec.flow_rate == 10.0

    def test_constraint_equations(self):
        spec = NetworkSpec(
            n1=200, n2=100, nic_rate1=10.0, nic_rate2=100.0,
            backbone_rate=1000.0,
        )
        k = spec.k
        # No congestion: k flows at the per-flow rate fit the backbone
        # (the form the paper's example actually uses), and k is capped
        # by the node counts.
        assert k * spec.flow_rate <= spec.backbone_rate
        assert k <= spec.n1 and k <= spec.n2  # (c), (d)


class TestSection52Testbed:
    """§5.2: 10+10 nodes, 100 Mbit NICs shaped to 100/k."""

    @pytest.mark.parametrize("k", [3, 5, 7])
    def test_paper_testbed_derives_k(self, k):
        spec = NetworkSpec.paper_testbed(k)
        assert spec.k == k
        assert spec.n1 == spec.n2 == 10
        assert spec.nic_rate1 == pytest.approx(100.0 / k)
