"""Cross-cutting invariance properties of the schedulers and the bound."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import lower_bound
from repro.core.ggp import ggp
from repro.core.oggp import oggp
from repro.graph.bipartite import BipartiteGraph
from tests.conftest import bipartite_graphs, ks


def transpose(g: BipartiteGraph) -> BipartiteGraph:
    return BipartiteGraph.from_edges(
        [(e.right, e.left, e.weight) for e in g.edges_sorted()]
    )


def scale(g: BipartiteGraph, c: int) -> BipartiteGraph:
    return g.map_weights(lambda w: w * c)


class TestScaling:
    @given(bipartite_graphs(), ks, st.integers(2, 5))
    @settings(max_examples=60, deadline=None)
    def test_lower_bound_scales_linearly_at_beta0(self, g, k, c):
        assert lower_bound(scale(g, c), k, 0.0) == pytest.approx(
            c * lower_bound(g, k, 0.0)
        )

    @given(bipartite_graphs(), ks, st.integers(2, 5))
    @settings(max_examples=60, deadline=None)
    def test_beta0_cost_scales_linearly(self, g, k, c):
        # At beta = 0 the peeling decisions are scale-invariant (every
        # comparison scales), so the cost is exactly linear in the
        # weights.
        for algorithm in (ggp, oggp):
            base = algorithm(g, k, 0.0).cost
            scaled = algorithm(scale(g, c), k, 0.0).cost
            assert scaled == pytest.approx(c * base)

    @given(bipartite_graphs(), ks, st.integers(2, 5))
    @settings(max_examples=40, deadline=None)
    def test_joint_beta_weight_scaling(self, g, k, c):
        # Scaling weights AND beta together scales the whole problem.
        base = oggp(g, k, 1.0).cost
        scaled = oggp(scale(g, c), k, float(c)).cost
        assert scaled == pytest.approx(c * base)


class TestTransposition:
    @given(bipartite_graphs(), ks, st.sampled_from([0.0, 1.0]))
    @settings(max_examples=60, deadline=None)
    def test_lower_bound_is_transpose_invariant(self, g, k, beta):
        assert lower_bound(transpose(g), k, beta) == pytest.approx(
            lower_bound(g, k, beta)
        )

    @given(bipartite_graphs(), ks)
    @settings(max_examples=40, deadline=None)
    def test_transposed_schedules_stay_within_guarantee(self, g, k):
        gt = transpose(g)
        bound = lower_bound(g, k, 1.0)
        assert oggp(gt, k, 1.0).cost <= 2 * bound + 1e-6
        s = oggp(gt, k, 1.0)
        s.validate(gt)


class TestRelabelling:
    @given(bipartite_graphs(max_side=5, max_edges=10), ks)
    @settings(max_examples=40, deadline=None)
    def test_node_id_shift_does_not_change_cost(self, g, k):
        shifted = BipartiteGraph.from_edges(
            [(e.left + 100, e.right + 200, e.weight)
             for e in g.edges_sorted()]
        )
        assert oggp(shifted, k, 1.0).cost == pytest.approx(
            oggp(g, k, 1.0).cost
        )
