"""The warm-started peeling engines reproduce the stateless reference.

The ``'fast'`` engine keeps sorted indices, node maps and matrix state
alive across peels but must remain *observably identical* to the
``'reference'`` engine (fresh :func:`bottleneck_matching` /
:func:`hungarian_perfect_matching` calls every peel): same schedules,
same costs, same step counts, on every input.  The ``'resume'`` engine
additionally carries the matching itself across peels, which may pick
different (equally valid) matchings — it only promises a correct
schedule.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ggp import ggp
from repro.core.oggp import oggp
from repro.core.wrgp import wrgp
from repro.graph.generators import random_weight_regular
from repro.util.errors import ConfigError
from tests.conftest import bipartite_graphs, betas, ks

strategies = st.sampled_from(["arbitrary", "max_weight", "bottleneck"])


class TestFastEqualsReference:
    @given(bipartite_graphs(), ks, betas, strategies)
    @settings(max_examples=50, deadline=None)
    def test_ggp_identical_schedule(self, g, k, beta, matching):
        fast = ggp(g, k, beta, matching=matching, engine="fast")
        ref = ggp(g, k, beta, matching=matching, engine="reference")
        assert fast.to_dict() == ref.to_dict()
        fast.validate(g)

    @given(bipartite_graphs(), ks, betas)
    @settings(max_examples=50, deadline=None)
    def test_oggp_identical_schedule(self, g, k, beta):
        fast = oggp(g, k, beta, engine="fast")
        ref = oggp(g, k, beta, engine="reference")
        assert fast.cost == ref.cost
        assert fast.num_steps == ref.num_steps
        assert fast.to_dict() == ref.to_dict()
        fast.validate(g)

    @given(st.integers(0, 10**6), st.integers(2, 7), betas, strategies)
    @settings(max_examples=50, deadline=None)
    def test_wrgp_identical_schedule(self, seed, n, beta, matching):
        g = random_weight_regular(seed, n=n)
        fast = wrgp(g, beta=beta, matching=matching, engine="fast")
        ref = wrgp(g, beta=beta, matching=matching, engine="reference")
        assert fast.to_dict() == ref.to_dict()
        fast.validate(g)


class TestResumeEngine:
    """'resume' only promises validity, not identity — check exactly that."""

    @given(bipartite_graphs(), ks, betas)
    @settings(max_examples=50, deadline=None)
    def test_oggp_resume_is_valid(self, g, k, beta):
        schedule = oggp(g, k, beta, engine="resume")
        schedule.validate(g)

    @given(st.integers(0, 10**6), st.integers(2, 7), betas)
    @settings(max_examples=30, deadline=None)
    def test_wrgp_resume_is_valid(self, seed, n, beta):
        g = random_weight_regular(seed, n=n)
        schedule = wrgp(g, beta=beta, matching="bottleneck", engine="resume")
        schedule.validate(g)

    def test_resume_can_differ_but_stays_close(self):
        # A fixed instance where warm matchings are known to change the
        # peel sequence: both runs must still validate and stay within
        # the 2-approximation of each other.
        g = random_weight_regular(17, n=6, layers=4)
        fast = wrgp(g, beta=1.0, matching="bottleneck", engine="fast")
        resume = wrgp(g, beta=1.0, matching="bottleneck", engine="resume")
        fast.validate(g)
        resume.validate(g)
        assert resume.cost <= 2 * fast.cost
        assert fast.cost <= 2 * resume.cost


class TestEngineArgument:
    def test_unknown_engine_rejected(self):
        g = random_weight_regular(1, n=3)
        with pytest.raises(ConfigError):
            wrgp(g, matching="bottleneck", engine="warp")

    def test_unknown_engine_is_a_value_error_listing_engines(self):
        # ConfigError doubles as ValueError so stdlib-only callers can
        # catch it; the message must name every valid engine.
        from repro.core.wrgp import VALID_ENGINES, peel_weight_regular

        g = random_weight_regular(1, n=3)
        with pytest.raises(ValueError) as excinfo:
            peel_weight_regular(g, engine="warp")
        for engine in VALID_ENGINES:
            assert repr(engine) in str(excinfo.value)

    def test_unknown_engine_raises_eagerly_not_at_first_iteration(self):
        # peel_weight_regular is generator-backed; the engine check must
        # fire at call time, before anyone iterates.
        from repro.core.wrgp import peel_weight_regular

        g = random_weight_regular(1, n=3)
        with pytest.raises(ValueError):
            peel_weight_regular(g, engine="")  # no next() needed
