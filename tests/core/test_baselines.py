"""Tests for the baseline schedulers."""

import pytest
from hypothesis import given, settings

from repro.core.baselines import greedy_schedule, list_schedule, sequential_schedule
from repro.core.bounds import lower_bound
from repro.core.ggp import ggp
from repro.graph.bipartite import BipartiteGraph
from repro.util.errors import ConfigError
from tests.conftest import bipartite_graphs, betas, ks


class TestSequential:
    def test_cost_formula(self, small_graph):
        s = sequential_schedule(small_graph, beta=2.0)
        s.validate(small_graph)
        assert s.cost == pytest.approx(
            small_graph.total_weight() + 2.0 * small_graph.num_edges
        )
        assert s.num_steps == small_graph.num_edges
        assert s.max_step_size == 1

    def test_empty(self):
        s = sequential_schedule(BipartiteGraph())
        assert s.num_steps == 0

    @given(bipartite_graphs(), betas)
    @settings(max_examples=40, deadline=None)
    def test_always_valid(self, g, beta):
        sequential_schedule(g, beta).validate(g)


class TestGreedy:
    @given(bipartite_graphs(), ks, betas)
    @settings(max_examples=80, deadline=None)
    def test_valid_and_respects_k(self, g, k, beta):
        s = greedy_schedule(g, k, beta)
        s.validate(g)
        assert s.max_step_size <= k

    def test_terminates_on_hard_case(self):
        # Long chain: greedy must peel through without stalling.
        g = BipartiteGraph.from_edges(
            [(i, i, 10) for i in range(6)] + [(i, i + 1, 5) for i in range(5)]
        )
        s = greedy_schedule(g, 3, 1.0)
        s.validate(g)

    def test_invalid_params(self, small_graph):
        with pytest.raises(ConfigError):
            greedy_schedule(small_graph, 0, 1.0)

    @given(bipartite_graphs())
    @settings(max_examples=40, deadline=None)
    def test_never_better_than_bound(self, g):
        s = greedy_schedule(g, 3, 1.0)
        assert s.cost >= lower_bound(g, 3, 1.0) - 1e-9


class TestListSchedule:
    @given(bipartite_graphs(), ks, betas)
    @settings(max_examples=80, deadline=None)
    def test_valid_and_respects_k(self, g, k, beta):
        s = list_schedule(g, k, beta)
        s.validate(g)
        assert s.max_step_size <= k

    def test_non_preemptive(self, small_graph):
        s = list_schedule(small_graph, 2, 1.0)
        seen = set()
        for step in s.steps:
            for t in step.transfers:
                assert t.edge_id not in seen, "message split across steps"
                seen.add(t.edge_id)

    def test_packs_compatible_messages(self):
        g = BipartiteGraph.from_edges([(0, 0, 5), (1, 1, 5), (2, 2, 5)])
        s = list_schedule(g, 3, 1.0)
        assert s.num_steps == 1

    def test_heaviest_first_ordering(self):
        g = BipartiteGraph.from_edges([(0, 0, 1), (0, 1, 9)])
        s = list_schedule(g, 2, 0.0)
        assert s.steps[0].transfers[0].amount == 9.0


class TestRelativeQuality:
    @given(bipartite_graphs(), ks)
    @settings(max_examples=40, deadline=None)
    def test_ggp_no_worse_than_twice_any_baseline_bound(self, g, k):
        # GGP carries the guarantee; baselines need not. But GGP must
        # never exceed the sequential cost by more than the guarantee gap.
        beta = 1.0
        bound = lower_bound(g, k, beta)
        assert ggp(g, k, beta).cost <= 2.0 * bound + 1e-6
        assert sequential_schedule(g, beta).cost >= bound - 1e-9
