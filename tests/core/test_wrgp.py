"""Tests for WRGP (weight-regular graph peeling)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.wrgp import peel_weight_regular, wrgp
from repro.graph.bipartite import BipartiteGraph
from repro.graph.generators import complete_bipartite, random_weight_regular
from repro.util.errors import GraphError


class TestWrgpBasics:
    def test_rejects_irregular_graph(self):
        g = BipartiteGraph.from_edges([(0, 0, 2), (1, 1, 1)])
        with pytest.raises(GraphError):
            wrgp(g)

    def test_single_matching_graph_takes_one_step(self):
        g = BipartiteGraph.from_edges([(0, 0, 5), (1, 1, 5)])
        s = wrgp(g)
        assert s.num_steps == 1
        assert s.cost == 5.0
        s.validate(g)

    def test_diagonal_plus_offdiagonal(self):
        # 2-regular-ish: each node has weight 3.
        g = BipartiteGraph.from_edges(
            [(0, 0, 2), (0, 1, 1), (1, 1, 2), (1, 0, 1)]
        )
        s = wrgp(g, beta=1.0)
        s.validate(g)
        assert s.transmission_time == 3.0  # equals the regular weight
        assert s.num_steps == 2

    def test_every_step_is_a_perfect_matching(self):
        g = random_weight_regular(5, n=5, layers=3)
        s = wrgp(g)
        for step in s.steps:
            assert len(step) == 5

    def test_transmission_equals_node_weight(self):
        # Peeling a weight-regular graph uses exactly W(G) transmission:
        # every step removes its duration from every node simultaneously.
        for seed in range(10):
            g = random_weight_regular(seed, n=4, layers=4)
            s = wrgp(g)
            assert s.transmission_time == pytest.approx(g.max_node_weight())

    def test_uniform_complete_square(self):
        g = complete_bipartite(3, 3, weight=2)
        s = wrgp(g)
        s.validate(g)
        assert s.transmission_time == 6.0
        assert s.num_steps == 3

    def test_empty_graph(self):
        s = wrgp(BipartiteGraph())
        assert s.num_steps == 0

    def test_bottleneck_strategy_no_worse_steps(self):
        for seed in range(8):
            g = random_weight_regular(seed, n=5, layers=4)
            arbitrary = wrgp(g, matching="arbitrary")
            bottleneck = wrgp(g, matching="bottleneck")
            bottleneck.validate(g)
            assert bottleneck.transmission_time == pytest.approx(
                arbitrary.transmission_time
            )

    def test_max_weight_strategy(self):
        for seed in range(5):
            g = random_weight_regular(seed, n=4, layers=3)
            s = wrgp(g, matching="max_weight")
            s.validate(g)


class TestPeelCore:
    def test_peel_consumes_graph(self):
        g = random_weight_regular(3, n=3, layers=2)
        work = g.copy()
        steps = list(peel_weight_regular(work))
        assert work.is_empty()
        assert len(steps) >= 1

    def test_peel_amounts_positive_and_min(self):
        g = random_weight_regular(4, n=4, layers=3)
        for matching, peel in peel_weight_regular(g.copy()):
            assert peel > 0
            assert peel == matching.min_weight()

    def test_non_square_rejected(self):
        g = BipartiteGraph.from_edges([(0, 0, 1), (1, 0, 1)])
        with pytest.raises(GraphError):
            list(peel_weight_regular(g))


class TestProperties:
    @given(st.integers(0, 10_000), st.integers(1, 6), st.integers(1, 4))
    @settings(max_examples=50, deadline=None)
    def test_valid_schedule_on_random_regular_graphs(self, seed, n, layers):
        g = random_weight_regular(seed, n=n, layers=layers)
        s = wrgp(g, beta=1.0)
        s.validate(g)
        # Optimality of transmission for weight-regular inputs.
        assert s.transmission_time == pytest.approx(g.max_node_weight())
        # At most m steps (one edge dies per step).
        assert s.num_steps <= g.num_edges
