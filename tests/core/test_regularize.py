"""Tests for the §4.2.2 regularisation — including Proposition 1."""

import math
from fractions import Fraction

import pytest
from hypothesis import given, settings

from repro.core.normalize import normalize_weights
from repro.core.regularize import regularize
from repro.graph.bipartite import BipartiteGraph, EdgeKind
from repro.matching.hopcroft_karp import hopcroft_karp
from repro.util.errors import GraphError
from tests.conftest import bipartite_graphs, ks


class TestConstruction:
    def test_already_regular_square_graph_needs_no_padding(self):
        g = BipartiteGraph.from_edges(
            [(0, 0, 2), (0, 1, 1), (1, 1, 2), (1, 0, 1)]
        )
        result = regularize(g, k=2)
        # P=6, W=3, k=2 -> target 3, no filler, no deficiency.
        assert result.target == 3
        assert result.num_filler_edges == 0
        assert result.num_deficiency_edges == 0
        assert result.graph == g

    def test_single_edge(self):
        g = BipartiteGraph.from_edges([(0, 0, 5)])
        result = regularize(g, k=1)
        assert result.target == 5
        assert result.graph.is_weight_regular()
        assert result.graph.num_left == result.graph.num_right == 1

    def test_target_value_int_case(self, small_graph):
        # small_graph: P=15, W=6; k=4 -> target max(6, ceil(15/4)=4) = 6.
        result = regularize(small_graph, k=4)
        assert result.target == 6

    def test_bandwidth_dominates(self):
        g = BipartiteGraph.from_edges([(i, i, 10) for i in range(4)])
        result = regularize(g, k=2)  # P=40, W=10, ceil(40/2)=20
        assert result.target == 20

    def test_k_clamped_to_sides(self):
        g = BipartiteGraph.from_edges([(0, 0, 3), (1, 1, 3)])
        result = regularize(g, k=100)
        assert result.k_eff == 2

    def test_isolated_nodes_dropped(self):
        g = BipartiteGraph.from_edges([(0, 0, 3)])
        g.add_left_node(5)
        result = regularize(g, k=1)
        assert result.dropped_left == [5]
        assert 5 not in result.graph.left_nodes()

    def test_empty_graph(self):
        result = regularize(BipartiteGraph(), k=3)
        assert result.graph.is_empty()

    def test_invalid_k(self, small_graph):
        with pytest.raises(GraphError):
            regularize(small_graph, k=0)

    def test_fraction_weights(self):
        g = BipartiteGraph.from_edges([(0, 0, 1)]).map_weights(
            lambda w: Fraction(5, 2)
        )
        g.add_edge(1, 1, Fraction(3, 2))
        result = regularize(g, k=2)
        result.graph.validate()
        assert result.graph.is_weight_regular(tol=0)

    def test_filler_edges_connect_fresh_pairs(self):
        # W > P/k forces fillers: one heavy edge, k=2.
        g = BipartiteGraph.from_edges([(0, 0, 10), (1, 1, 2)])
        result = regularize(g, k=2)
        assert result.num_filler_edges >= 1
        originals = set(g.left_nodes()) | set(g.right_nodes())
        for e in result.graph.edges():
            if e.kind is EdgeKind.FILLER:
                assert e.left not in g.left_nodes()
                assert e.right not in g.right_nodes()
        del originals

    def test_deficiency_edges_never_join_two_padding_nodes(self, small_graph):
        result = regularize(small_graph, k=2)
        j = result.graph
        from repro.graph.bipartite import NodeKind

        for e in j.edges():
            if e.kind is EdgeKind.DEFICIENCY:
                assert not (
                    j.left_node_kind(e.left) is NodeKind.PADDING
                    and j.right_node_kind(e.right) is NodeKind.PADDING
                )


class TestInvariants:
    @given(bipartite_graphs(max_side=5, max_edges=10), ks)
    @settings(max_examples=100, deadline=None)
    def test_result_is_weight_regular_and_square(self, g, k):
        result = regularize(g, k)
        j = result.graph
        j.validate()
        assert j.is_weight_regular(tol=0)
        assert j.num_left == j.num_right
        # Node-count identity from the paper: each side ends with
        # n1' + n2' - k nodes, where n1'/n2' count stage-A (original +
        # filler) nodes.
        from repro.graph.bipartite import NodeKind

        n1p = sum(
            1 for n in j.left_nodes()
            if j.left_node_kind(n) is not NodeKind.PADDING
        )
        n2p = sum(
            1 for n in j.right_nodes()
            if j.right_node_kind(n) is not NodeKind.PADDING
        )
        if not j.is_empty():
            assert j.num_left == n1p + n2p - result.k_eff

    @given(bipartite_graphs(max_side=5, max_edges=10), ks)
    @settings(max_examples=100, deadline=None)
    def test_original_edges_preserved_exactly(self, g, k):
        result = regularize(g, k)
        j = result.graph
        for e in g.edges():
            assert j.has_edge_id(e.id)
            kept = j.edge(e.id)
            assert kept.weight == e.weight
            assert kept.kind is EdgeKind.ORIGINAL
        originals_in_j = [
            e for e in j.edges() if e.kind is EdgeKind.ORIGINAL
        ]
        assert len(originals_in_j) == g.num_edges

    @given(bipartite_graphs(max_side=5, max_edges=10), ks)
    @settings(max_examples=100, deadline=None)
    def test_proposition_1(self, g, k):
        """Any perfect matching of J has at most k original edges."""
        result = regularize(g, k)
        j = result.graph
        if j.is_empty():
            return
        m = hopcroft_karp(j)
        assert m.is_perfect_in(j), "weight-regular graph must have a PM"
        original = [e for e in m if e.kind is EdgeKind.ORIGINAL]
        assert len(original) <= result.k_eff <= k

    @given(bipartite_graphs(max_side=5, max_edges=10), ks)
    @settings(max_examples=60, deadline=None)
    def test_padding_volume_accounting(self, g, k):
        """Total weight of J is target * (nodes per side)."""
        result = regularize(g, k)
        j = result.graph
        if j.is_empty():
            return
        assert j.total_weight() == result.target * j.num_left

    @given(bipartite_graphs(max_side=5, max_edges=10), ks)
    @settings(max_examples=60, deadline=None)
    def test_input_not_mutated(self, g, k):
        snapshot = g.to_json()
        regularize(g, k)
        assert g.to_json() == snapshot
