"""Tests for the online (dynamic-pattern) scheduler."""

import pytest

from repro.core.online import (
    Arrival,
    offline_oracle_cost,
    poisson_arrivals,
    run_online_batches,
)
from repro.util.errors import ConfigError


class TestArrival:
    def test_validation(self):
        with pytest.raises(ConfigError):
            Arrival(time=-1.0, src=0, dst=0, size=1.0)
        with pytest.raises(ConfigError):
            Arrival(time=0.0, src=0, dst=0, size=0.0)


class TestRunOnlineBatches:
    def test_empty(self):
        result = run_online_batches([], k=2, beta=1.0)
        assert result.completion_time == 0.0
        assert result.rounds == 0

    def test_single_burst_is_one_round(self):
        arrivals = [Arrival(0.0, i, i, 5.0) for i in range(3)]
        result = run_online_batches(arrivals, k=3, beta=1.0)
        assert result.rounds == 1
        # One step of three disjoint messages: cost = beta + 5.
        assert result.completion_time == pytest.approx(6.0)

    def test_late_arrival_waits_for_batch(self):
        arrivals = [
            Arrival(0.0, 0, 0, 10.0),
            Arrival(1.0, 1, 1, 10.0),  # arrives while round 1 runs
        ]
        result = run_online_batches(arrivals, k=2, beta=1.0)
        assert result.rounds == 2
        # Round 1: 0..11; round 2 starts at 11 and costs 11 more.
        assert result.completion_time == pytest.approx(22.0)

    def test_gap_jumps_to_next_arrival(self):
        arrivals = [
            Arrival(0.0, 0, 0, 2.0),
            Arrival(100.0, 1, 1, 2.0),
        ]
        result = run_online_batches(arrivals, k=2, beta=1.0)
        assert result.rounds == 2
        assert result.completion_time == pytest.approx(103.0)

    def test_same_pair_twice(self):
        arrivals = [
            Arrival(0.0, 0, 0, 3.0),
            Arrival(0.0, 0, 0, 4.0),  # parallel message, same pair
        ]
        result = run_online_batches(arrivals, k=2, beta=0.0)
        assert result.completion_time == pytest.approx(7.0)

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            run_online_batches([], k=0, beta=1.0)
        with pytest.raises(ConfigError):
            run_online_batches([], k=1, beta=-1.0)

    def test_round_schedules_exposed(self):
        arrivals = [Arrival(0.0, 0, 0, 5.0)]
        result = run_online_batches(arrivals, k=1, beta=1.0)
        assert len(result.round_schedules) == 1
        assert result.round_schedules[0].cost == pytest.approx(6.0)


class TestOracle:
    def test_empty(self):
        assert offline_oracle_cost([], k=2, beta=1.0) == 0.0

    def test_at_least_last_arrival(self):
        arrivals = [Arrival(50.0, 0, 0, 1.0)]
        assert offline_oracle_cost(arrivals, k=1, beta=0.0) >= 50.0

    def test_online_never_beats_oracle(self):
        for seed in range(6):
            arrivals = poisson_arrivals(
                seed, n1=5, n2=5, count=20, rate=1.0,
                size_low=1.0, size_high=10.0,
            )
            online = run_online_batches(arrivals, k=3, beta=0.5)
            oracle = offline_oracle_cost(arrivals, k=3, beta=0.5)
            assert online.completion_time >= oracle - 1e-9

    def test_competitive_ratio_is_bounded_in_practice(self):
        # Batching doubles at worst in these regimes; sanity ceiling 3.
        for seed in range(4):
            arrivals = poisson_arrivals(
                seed, n1=6, n2=6, count=30, rate=5.0,
                size_low=1.0, size_high=10.0,
            )
            online = run_online_batches(arrivals, k=4, beta=0.5)
            oracle = offline_oracle_cost(arrivals, k=4, beta=0.5)
            assert online.completion_time / oracle < 3.0


class TestPoissonArrivals:
    def test_shape_and_determinism(self):
        a = poisson_arrivals(1, 4, 4, 10, 2.0, 1.0, 5.0)
        b = poisson_arrivals(1, 4, 4, 10, 2.0, 1.0, 5.0)
        assert a == b
        assert len(a) == 10
        assert all(x.time <= y.time for x, y in zip(a, a[1:]))
        assert all(0 <= x.src < 4 and 0 <= x.dst < 4 for x in a)
        assert all(1.0 <= x.size <= 5.0 for x in a)

    def test_validation(self):
        with pytest.raises(ConfigError):
            poisson_arrivals(0, 2, 2, 0, 1.0, 1.0, 2.0)
        with pytest.raises(ConfigError):
            poisson_arrivals(0, 2, 2, 1, 0.0, 1.0, 2.0)
        with pytest.raises(ConfigError):
            poisson_arrivals(0, 2, 2, 1, 1.0, 0.0, 2.0)
