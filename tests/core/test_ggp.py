"""Tests for GGP — validity, approximation guarantee, realisation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import lower_bound
from repro.core.ggp import ggp
from repro.graph.bipartite import BipartiteGraph
from repro.util.errors import ConfigError
from tests.conftest import bipartite_graphs, betas, ks

STRATEGIES = ("arbitrary", "max_weight", "bottleneck")


class TestBasics:
    def test_empty_graph(self):
        s = ggp(BipartiteGraph(), k=3, beta=1.0)
        assert s.num_steps == 0
        assert s.cost == 0.0

    def test_single_edge(self):
        # A single message is never preempted: one step, full weight.
        g = BipartiteGraph.from_edges([(0, 0, 7)])
        s = ggp(g, k=1, beta=2.0)
        s.validate(g)
        assert s.num_steps == 1
        assert s.cost == pytest.approx(2.0 + 7.0)

    def test_single_edge_exact_multiple(self):
        g = BipartiteGraph.from_edges([(0, 0, 8)])
        s = ggp(g, k=1, beta=2.0)
        s.validate(g)
        assert s.cost == pytest.approx(10.0)

    def test_invalid_params(self, small_graph):
        with pytest.raises(ConfigError):
            ggp(small_graph, k=0, beta=1.0)
        with pytest.raises(ConfigError):
            ggp(small_graph, k=1, beta=-1.0)

    def test_input_not_mutated(self, small_graph):
        snapshot = small_graph.to_json()
        ggp(small_graph, k=2, beta=1.0)
        assert small_graph.to_json() == snapshot

    def test_k_one_is_sequential_like(self, small_graph):
        s = ggp(small_graph, k=1, beta=1.0)
        s.validate(small_graph)
        assert s.max_step_size == 1
        # cost = P + beta*m at best (weights integral, beta 1).
        assert s.cost == pytest.approx(
            small_graph.total_weight() + small_graph.num_edges
        )

    def test_isolated_nodes_are_harmless(self):
        g = BipartiteGraph.from_edges([(0, 0, 3)])
        g.add_left_node(7)
        g.add_right_node(9)
        s = ggp(g, k=2, beta=1.0)
        s.validate(g)


class TestGuarantee:
    @given(bipartite_graphs(), ks, betas)
    @settings(max_examples=120, deadline=None)
    def test_two_approximation_and_validity(self, g, k, beta):
        s = ggp(g, k=k, beta=beta)
        s.validate(g)
        assert s.cost <= 2.0 * lower_bound(g, k, beta) + 1e-6

    @given(
        bipartite_graphs(integer_weights=False),
        ks,
        st.sampled_from([0.0, 0.3, 1.7]),
    )
    @settings(max_examples=80, deadline=None)
    def test_float_weights(self, g, k, beta):
        s = ggp(g, k=k, beta=beta)
        s.validate(g, rel_tol=1e-9)
        assert s.cost <= 2.0 * lower_bound(g, k, beta) + 1e-6

    @given(bipartite_graphs(), ks)
    @settings(max_examples=60, deadline=None)
    def test_all_strategies_valid(self, g, k):
        for strategy in STRATEGIES:
            s = ggp(g, k=k, beta=1.0, matching=strategy)
            s.validate(g)
            assert s.cost <= 2.0 * lower_bound(g, k, 1.0) + 1e-6

    @given(bipartite_graphs(), ks, betas)
    @settings(max_examples=60, deadline=None)
    def test_respects_k(self, g, k, beta):
        s = ggp(g, k=k, beta=beta)
        assert s.max_step_size <= k

    @given(bipartite_graphs())
    @settings(max_examples=40, deadline=None)
    def test_deterministic(self, g):
        a = ggp(g, k=3, beta=1.0)
        b = ggp(g, k=3, beta=1.0)
        assert a.to_json() == b.to_json()


class TestChunkRealisation:
    def test_no_chunk_shorter_than_beta_except_none(self):
        # With integer weights and beta=1, all chunks are >= 1.
        g = BipartiteGraph.from_edges([(0, 0, 5), (0, 1, 3), (1, 0, 2)])
        s = ggp(g, k=2, beta=1.0)
        for step in s.steps:
            for t in step.transfers:
                assert t.amount >= 1.0 - 1e-12

    def test_fractional_weights_only_last_chunk_shrinks(self):
        g = BipartiteGraph.from_edges([(0, 0, 7.3)])
        s = ggp(g, k=1, beta=2.0)
        s.validate(g)
        amounts = [t.amount for step in s.steps for t in step.transfers]
        assert sum(amounts) == pytest.approx(7.3)
        # all chunks except possibly the last are >= beta
        for a in amounts[:-1]:
            assert a >= 2.0 - 1e-12

    def test_large_weight_small_beta(self):
        g = BipartiteGraph.from_edges([(0, 0, 1000), (1, 1, 999)])
        s = ggp(g, k=2, beta=0.5)
        s.validate(g)
        assert s.transmission_time <= 1001
