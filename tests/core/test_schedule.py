"""Tests for the Step/Schedule model and its validation."""

import pytest

from repro.core.schedule import Schedule, Step, Transfer
from repro.graph.bipartite import BipartiteGraph
from repro.util.errors import ScheduleError


def simple_schedule() -> tuple[BipartiteGraph, Schedule]:
    g = BipartiteGraph.from_edges([(0, 0, 4), (1, 1, 3)])
    e0, e1 = g.edges_sorted()
    steps = [
        Step([Transfer(e0.id, 0, 0, 3.0), Transfer(e1.id, 1, 1, 3.0)]),
        Step([Transfer(e0.id, 0, 0, 1.0)]),
    ]
    return g, Schedule(steps, k=2, beta=1.0)


class TestStep:
    def test_duration_defaults_to_max_amount(self):
        s = Step([Transfer(0, 0, 0, 2.0), Transfer(1, 1, 1, 5.0)])
        assert s.duration == 5.0
        assert s.volume() == 7.0
        assert len(s) == 2

    def test_explicit_duration_may_exceed(self):
        s = Step([Transfer(0, 0, 0, 2.0)], duration=3.0)
        assert s.duration == 3.0

    def test_duration_below_max_rejected(self):
        with pytest.raises(ScheduleError):
            Step([Transfer(0, 0, 0, 2.0)], duration=1.0)

    def test_one_port_sender_violation(self):
        with pytest.raises(ScheduleError):
            Step([Transfer(0, 0, 0, 1.0), Transfer(1, 0, 1, 1.0)])

    def test_one_port_receiver_violation(self):
        with pytest.raises(ScheduleError):
            Step([Transfer(0, 0, 0, 1.0), Transfer(1, 1, 0, 1.0)])

    def test_nonpositive_amount_rejected(self):
        with pytest.raises(ScheduleError):
            Step([Transfer(0, 0, 0, 0.0)])

    def test_serialization_roundtrip(self):
        s = Step([Transfer(3, 1, 2, 4.5)], duration=5.0)
        restored = Step.from_dict(s.to_dict())
        assert restored.duration == 5.0
        assert restored.transfers[0] == Transfer(3, 1, 2, 4.5)

    def test_edge_ids(self):
        s = Step([Transfer(3, 1, 2, 4.5), Transfer(7, 0, 0, 1.0)])
        assert s.edge_ids() == {3, 7}


class TestScheduleMetrics:
    def test_cost_decomposition(self):
        _, sched = simple_schedule()
        assert sched.num_steps == 2
        assert sched.transmission_time == 4.0
        assert sched.setup_time == 2.0
        assert sched.cost == 6.0
        assert sched.total_volume == 7.0
        assert sched.max_step_size == 2

    def test_empty_schedule(self):
        s = Schedule([], k=1, beta=2.0)
        assert s.cost == 0.0
        assert s.num_steps == 0
        s.validate(BipartiteGraph())

    def test_transferred_per_edge(self):
        _, sched = simple_schedule()
        totals = sched.transferred_per_edge()
        assert sorted(totals.values()) == [3.0, 4.0]

    def test_invalid_params(self):
        with pytest.raises(ScheduleError):
            Schedule([], k=0, beta=0.0)
        with pytest.raises(ScheduleError):
            Schedule([], k=1, beta=-1.0)


class TestValidation:
    def test_valid_schedule_passes(self):
        g, sched = simple_schedule()
        sched.validate(g)

    def test_k_violation(self):
        g, _ = simple_schedule()
        e0, e1 = g.edges_sorted()
        steps = [
            Step([Transfer(e0.id, 0, 0, 4.0), Transfer(e1.id, 1, 1, 3.0)]),
        ]
        with pytest.raises(ScheduleError, match="exceeds k"):
            Schedule(steps, k=1, beta=0.0).validate(g)

    def test_under_delivery_detected(self):
        g, _ = simple_schedule()
        e0, e1 = g.edges_sorted()
        steps = [Step([Transfer(e0.id, 0, 0, 4.0)])]  # e1 never shipped
        with pytest.raises(ScheduleError, match="shipped"):
            Schedule(steps, k=2, beta=0.0).validate(g)

    def test_over_delivery_detected(self):
        g, _ = simple_schedule()
        e0, e1 = g.edges_sorted()
        steps = [
            Step([Transfer(e0.id, 0, 0, 4.0), Transfer(e1.id, 1, 1, 3.0)]),
            Step([Transfer(e0.id, 0, 0, 1.0)]),
        ]
        with pytest.raises(ScheduleError, match="shipped"):
            Schedule(steps, k=2, beta=0.0).validate(g)

    def test_unknown_edge_detected(self):
        g, _ = simple_schedule()
        steps = [Step([Transfer(999, 0, 0, 1.0)])]
        with pytest.raises(ScheduleError, match="unknown edge"):
            Schedule(steps, k=2, beta=0.0).validate(g)

    def test_wrong_endpoints_detected(self):
        g, _ = simple_schedule()
        e0, e1 = g.edges_sorted()
        steps = [
            Step([Transfer(e0.id, 0, 1, 4.0)]),  # e0 really goes 0->0
            Step([Transfer(e1.id, 1, 1, 3.0)]),
        ]
        with pytest.raises(ScheduleError, match="disagree"):
            Schedule(steps, k=2, beta=0.0).validate(g)


class TestSerializationAndDisplay:
    def test_json_roundtrip(self):
        g, sched = simple_schedule()
        restored = Schedule.from_json(sched.to_json())
        assert restored.cost == sched.cost
        assert restored.k == sched.k
        restored.validate(g)

    def test_describe_mentions_steps(self):
        _, sched = simple_schedule()
        text = sched.describe()
        assert "2 steps" in text
        assert "step 0" in text and "step 1" in text

    def test_repr(self):
        _, sched = simple_schedule()
        assert "cost=6" in repr(sched)

    def test_iteration(self):
        _, sched = simple_schedule()
        assert len(list(sched)) == 2
