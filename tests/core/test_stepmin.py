"""Tests for the step-minimal scheduler."""

import pytest
from hypothesis import given, settings

from repro.core.bounds import lower_bound
from repro.core.oggp import oggp
from repro.core.stepmin import minimum_steps, step_minimal_schedule
from repro.graph.bipartite import BipartiteGraph
from repro.util.errors import ConfigError
from tests.conftest import bipartite_graphs, ks


class TestMinimumSteps:
    def test_degree_bound(self):
        g = BipartiteGraph.from_edges([(0, j, 1) for j in range(5)])
        assert minimum_steps(g, k=5) == 5  # star of degree 5

    def test_count_bound(self):
        g = BipartiteGraph.from_edges([(i, i, 1) for i in range(6)])
        assert minimum_steps(g, k=2) == 3  # 6 edges / 2 per step

    def test_empty(self):
        assert minimum_steps(BipartiteGraph(), k=3) == 0

    def test_invalid_k(self):
        with pytest.raises(ConfigError):
            minimum_steps(BipartiteGraph(), k=0)


class TestStepMinimalSchedule:
    def test_diagonal_one_step(self):
        g = BipartiteGraph.from_edges([(i, i, 5) for i in range(4)])
        s = step_minimal_schedule(g, k=4, beta=1.0)
        s.validate(g)
        assert s.num_steps == 1

    def test_non_preemptive(self, small_graph):
        s = step_minimal_schedule(small_graph, k=2, beta=1.0)
        s.validate(small_graph)
        seen = set()
        for step in s.steps:
            for t in step.transfers:
                assert t.edge_id not in seen
                seen.add(t.edge_id)

    @given(bipartite_graphs(), ks)
    @settings(max_examples=80, deadline=None)
    def test_valid_and_respects_k(self, g, k):
        s = step_minimal_schedule(g, k, beta=1.0)
        s.validate(g)
        assert s.max_step_size <= k
        assert s.num_steps >= minimum_steps(g, k)

    @given(bipartite_graphs(max_side=8, max_edges=24), ks)
    @settings(max_examples=60, deadline=None)
    def test_step_count_near_optimum(self, g, k):
        s = step_minimal_schedule(g, k, beta=1.0)
        eta = minimum_steps(g, k)
        # König + chunking + merging stays within a small additive band
        # of the provable minimum.
        assert s.num_steps <= eta + max(2, eta)

    def test_large_beta_competitive_with_oggp_on_star(self):
        # A star forces Delta steps for everyone; stepmin avoids the
        # preemption chunking entirely.
        g = BipartiteGraph.from_edges([(0, j, 3 + j) for j in range(5)])
        beta = 40.0
        sm = step_minimal_schedule(g, k=3, beta=beta)
        og = oggp(g, k=3, beta=beta)
        sm.validate(g)
        assert sm.num_steps == 5
        assert sm.cost <= og.cost + 1e-9

    @given(bipartite_graphs())
    @settings(max_examples=40, deadline=None)
    def test_cost_at_least_lower_bound(self, g):
        s = step_minimal_schedule(g, k=4, beta=2.0)
        assert s.cost >= lower_bound(g, 4, 2.0) - 1e-9
