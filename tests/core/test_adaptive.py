"""Tests for adaptive rescheduling under a varying backbone."""

import pytest

from repro.core.adaptive import adaptive_schedule_run, static_schedule_run
from repro.graph.generators import from_traffic_matrix, random_bipartite
from repro.netsim.topology import NetworkSpec
from repro.netsim.trace import BandwidthTrace
from repro.patterns.matrices import uniform_matrix


def spec() -> NetworkSpec:
    return NetworkSpec(n1=6, n2=6, nic_rate1=10.0, nic_rate2=10.0,
                       backbone_rate=40.0, step_setup=0.01)


def sample_graph(seed: int = 0, scale: float = 1.0):
    traffic = uniform_matrix(seed, 6, 6, 4.0 * scale, 10.0 * scale)
    return from_traffic_matrix(traffic, speed=10.0), traffic


class TestStaticRun:
    def test_constant_trace_is_plain_schedule(self):
        graph, traffic = sample_graph()
        platform = spec()
        trace = BandwidthTrace.constant(40.0)
        result = static_schedule_run(graph, platform, trace)
        # With capacity == nominal there is no congestion; the time is
        # the schedule's own cost.
        from repro.core.oggp import oggp

        sched = oggp(graph, k=4, beta=platform.step_setup)
        assert result.total_time == pytest.approx(sched.cost, rel=1e-9)
        assert result.reschedules == 1
        assert result.k_used == (4,)

    def test_dip_with_penalty_slows(self):
        graph, _ = sample_graph()
        platform = spec()
        flat = static_schedule_run(
            graph, platform, BandwidthTrace.constant(40.0)
        )
        dipped = static_schedule_run(
            graph, platform,
            BandwidthTrace.from_pairs([(0, 40.0), (1.0, 10.0)]),
            congestion_penalty=1.0,
        )
        assert dipped.total_time > flat.total_time


class TestAdaptiveRun:
    def test_everything_delivered(self):
        graph, _ = sample_graph(3)
        platform = spec()
        trace = BandwidthTrace.from_pairs([(0, 40.0), (2.0, 10.0), (5.0, 40.0)])
        result = adaptive_schedule_run(graph, platform, trace)
        assert result.total_time > 0
        assert result.num_steps >= 1
        # k follows the trace: 4, then 1, then 4 again (if still running).
        assert result.k_used[0] == 4
        assert 1 in result.k_used

    def test_constant_trace_matches_static(self):
        graph, _ = sample_graph(5)
        platform = spec()
        trace = BandwidthTrace.constant(40.0)
        static = static_schedule_run(graph, platform, trace)
        adaptive = adaptive_schedule_run(graph, platform, trace)
        assert adaptive.total_time == pytest.approx(static.total_time, rel=1e-9)
        assert adaptive.reschedules == 1

    def test_beats_static_under_costly_congestion(self):
        platform = spec()
        wins = 0
        for seed in range(4):
            graph, traffic = sample_graph(seed, scale=3.0)
            horizon = traffic.sum() / platform.backbone_rate
            trace = BandwidthTrace.from_pairs(
                [(0, 40.0), (0.2 * horizon, 10.0), (0.9 * horizon, 40.0)]
            )
            static = static_schedule_run(
                graph, platform, trace, congestion_penalty=1.0
            )
            adaptive = adaptive_schedule_run(
                graph, platform, trace, congestion_penalty=1.0
            )
            if adaptive.total_time < static.total_time:
                wins += 1
        assert wins >= 3

    def test_empty_graph(self):
        from repro.graph.bipartite import BipartiteGraph

        result = adaptive_schedule_run(
            BipartiteGraph(), spec(), BandwidthTrace.constant(40.0)
        )
        assert result.total_time == 0.0
        assert result.num_steps == 0

    def test_deterministic(self):
        graph, _ = sample_graph(9)
        platform = spec()
        trace = BandwidthTrace.from_pairs([(0, 40.0), (1.5, 20.0)])
        a = adaptive_schedule_run(graph, platform, trace)
        b = adaptive_schedule_run(graph, platform, trace)
        assert a.total_time == b.total_time
        assert a.num_steps == b.num_steps
