"""Tests for the asynchronous schedule relaxation."""

import pytest
from hypothesis import given, settings

from repro.core.ggp import ggp
from repro.core.oggp import oggp
from repro.core.relax import AsyncSchedule, TimedTransfer, relax_schedule
from repro.core.schedule import Schedule, Step, Transfer
from repro.graph.bipartite import BipartiteGraph
from repro.util.errors import ScheduleError
from tests.conftest import bipartite_graphs, ks


class TestRelaxBasics:
    def test_empty_schedule(self):
        relaxed = relax_schedule(Schedule([], k=2, beta=1.0))
        assert relaxed.makespan == 0.0
        assert len(relaxed) == 0

    def test_single_transfer(self):
        sched = Schedule([Step([Transfer(0, 0, 0, 5.0)])], k=1, beta=2.0)
        relaxed = relax_schedule(sched)
        (t,) = relaxed.transfers
        assert t.start == 0.0
        assert t.finish == 7.0  # beta + amount
        assert relaxed.makespan == 7.0

    def test_independent_steps_overlap(self):
        # Two steps whose transfers share no ports: async runs them
        # in parallel, halving the makespan (k=2 slots available).
        sched = Schedule(
            [
                Step([Transfer(0, 0, 0, 10.0)]),
                Step([Transfer(1, 1, 1, 10.0)]),
            ],
            k=2,
            beta=0.0,
        )
        relaxed = relax_schedule(sched)
        assert relaxed.makespan == 10.0
        assert sched.cost == 20.0

    def test_port_conflict_serialises(self):
        sched = Schedule(
            [
                Step([Transfer(0, 0, 0, 10.0)]),
                Step([Transfer(1, 0, 1, 10.0)]),  # same sender
            ],
            k=2,
            beta=0.0,
        )
        relaxed = relax_schedule(sched)
        assert relaxed.makespan == 20.0

    def test_k_limits_concurrency(self):
        sched = Schedule(
            [
                Step([Transfer(0, 0, 0, 10.0)]),
                Step([Transfer(1, 1, 1, 10.0)]),
                Step([Transfer(2, 2, 2, 10.0)]),
            ],
            k=2,
            beta=0.0,
        )
        relaxed = relax_schedule(sched)
        # Only 2 slots: third transfer waits for a slot.
        assert relaxed.makespan == 20.0


class TestGuarantees:
    @given(bipartite_graphs(), ks)
    @settings(max_examples=60, deadline=None)
    def test_beta0_never_worse_than_sync(self, g, k):
        sync = oggp(g, k=k, beta=0.0)
        relaxed = relax_schedule(sync)
        relaxed.validate(g)
        assert relaxed.makespan <= sync.cost + 1e-9

    @given(bipartite_graphs(), ks)
    @settings(max_examples=60, deadline=None)
    def test_validity_for_positive_beta(self, g, k):
        sync = ggp(g, k=k, beta=1.0)
        relaxed = relax_schedule(sync)
        relaxed.validate(g)
        # Makespan is at least the longest single chunk + beta.
        longest = max(
            (t.amount for s in sync.steps for t in s.transfers), default=0.0
        )
        assert relaxed.makespan >= longest

    @given(bipartite_graphs())
    @settings(max_examples=40, deadline=None)
    def test_per_edge_chunks_stay_ordered(self, g):
        sync = oggp(g, k=3, beta=1.0)
        relaxed = relax_schedule(sync)
        by_edge: dict[int, list[TimedTransfer]] = {}
        for t in relaxed.transfers:
            by_edge.setdefault(t.edge_id, []).append(t)
        for chunks in by_edge.values():
            for a, b in zip(chunks, chunks[1:]):
                assert b.start >= a.finish - 1e-9


class TestValidation:
    def graph(self):
        return BipartiteGraph.from_edges([(0, 0, 5.0)])

    def test_detects_port_overlap(self):
        g = BipartiteGraph.from_edges([(0, 0, 5.0), (0, 1, 5.0)])
        e0, e1 = g.edges_sorted()
        bad = AsyncSchedule(
            [
                TimedTransfer(e0.id, 0, 0, 5.0, 0.0, 5.0),
                TimedTransfer(e1.id, 0, 1, 5.0, 2.0, 7.0),  # sender busy
            ],
            k=2,
            beta=0.0,
        )
        with pytest.raises(ScheduleError, match="overlap"):
            bad.validate(g)

    def test_detects_k_violation(self):
        g = BipartiteGraph.from_edges([(0, 0, 5.0), (1, 1, 5.0)])
        e0, e1 = g.edges_sorted()
        bad = AsyncSchedule(
            [
                TimedTransfer(e0.id, 0, 0, 5.0, 0.0, 5.0),
                TimedTransfer(e1.id, 1, 1, 5.0, 0.0, 5.0),
            ],
            k=1,
            beta=0.0,
        )
        with pytest.raises(ScheduleError, match="concurrent"):
            bad.validate(g)

    def test_detects_wrong_duration(self):
        g = self.graph()
        eid = g.edge_ids()[0]
        bad = AsyncSchedule(
            [TimedTransfer(eid, 0, 0, 5.0, 0.0, 4.0)], k=1, beta=0.0
        )
        with pytest.raises(ScheduleError, match="lasts"):
            bad.validate(g)

    def test_detects_missing_volume(self):
        g = self.graph()
        eid = g.edge_ids()[0]
        bad = AsyncSchedule(
            [TimedTransfer(eid, 0, 0, 2.0, 0.0, 2.0)], k=1, beta=0.0
        )
        with pytest.raises(ScheduleError, match="shipped"):
            bad.validate(g)

    def test_back_to_back_chunks_allowed(self):
        g = BipartiteGraph.from_edges([(0, 0, 4.0)])
        eid = g.edge_ids()[0]
        ok = AsyncSchedule(
            [
                TimedTransfer(eid, 0, 0, 2.0, 0.0, 2.0),
                TimedTransfer(eid, 0, 0, 2.0, 2.0, 4.0),
            ],
            k=1,
            beta=0.0,
        )
        ok.validate(g)

    def test_serialization(self):
        sched = Schedule([Step([Transfer(0, 0, 0, 5.0)])], k=1, beta=1.0)
        relaxed = relax_schedule(sched)
        data = relaxed.to_dict()
        assert data["k"] == 1
        assert len(data["transfers"]) == 1
