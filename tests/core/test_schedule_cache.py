"""Schedule cache: canonical keying, remapping, isolation, LRU."""

import pytest
from hypothesis import given, settings

from repro import obs
from repro.core.cache import DEFAULT_SCHEDULE_CACHE, ScheduleCache, cached_schedule
from repro.core.oggp import oggp
from repro.graph.bipartite import BipartiteGraph
from repro.util.errors import ConfigError
from tests.conftest import bipartite_graphs, betas, ks


def reinserted(graph: BipartiteGraph, reverse: bool = True) -> BipartiteGraph:
    """Same edge multiset, different insertion order (hence edge ids)."""
    edges = list(graph.edges())
    if reverse:
        edges = edges[::-1]
    out = BipartiteGraph()
    for e in edges:
        out.add_edge(e.left, e.right, e.weight)
    return out


class TestHitSemantics:
    @given(bipartite_graphs(), ks, betas)
    @settings(max_examples=40, deadline=None)
    def test_hit_equals_fresh_run(self, g, k, beta):
        cache = ScheduleCache()
        first = cached_schedule(g, k=k, beta=beta, cache=cache)
        second = cached_schedule(g, k=k, beta=beta, cache=cache)
        assert cache.stats()["hits"] == 1
        assert second.to_dict() == first.to_dict() == oggp(g, k, beta).to_dict()
        second.validate(g)

    def test_hit_is_independent_of_previous_results(self):
        g = BipartiteGraph.from_edges([(0, 0, 4), (0, 1, 2), (1, 1, 3), (1, 0, 5)])
        cache = ScheduleCache()
        first = cached_schedule(g, k=2, beta=1.0, cache=cache)
        reference = first.to_dict()
        hit = cached_schedule(g, k=2, beta=1.0, cache=cache)
        # Steps carry a mutable ``duration``; stretching a returned copy
        # must not leak into the cache or into other returned copies.
        hit.steps[0].duration += 100.0
        again = cached_schedule(g, k=2, beta=1.0, cache=cache)
        assert again.to_dict() == reference
        assert first.to_dict() == reference
        assert hit.steps[0] is not again.steps[0]

    def test_put_detaches_from_the_stored_schedule(self):
        g = BipartiteGraph.from_edges([(0, 0, 3), (1, 1, 2)])
        cache = ScheduleCache()
        computed = cached_schedule(g, k=2, beta=0.5, cache=cache)
        reference = computed.to_dict()
        computed.steps[0].duration += 7.0
        assert cached_schedule(g, k=2, beta=0.5, cache=cache).to_dict() == reference


class TestCanonicalKey:
    @given(bipartite_graphs(), ks, betas)
    @settings(max_examples=40, deadline=None)
    def test_insertion_order_does_not_miss(self, g, k, beta):
        cache = ScheduleCache()
        cached_schedule(g, k=k, beta=beta, cache=cache)
        g2 = reinserted(g)
        hit = cached_schedule(g2, k=k, beta=beta, cache=cache)
        assert cache.stats() == {"hits": 1, "misses": 1, "evictions": 0, "size": 1}
        # The remapped schedule must be valid *for the new graph's ids*.
        hit.validate(g2)
        assert hit.cost == cached_schedule(g, k=k, beta=beta, cache=cache).cost

    def test_different_parameters_miss(self):
        g = BipartiteGraph.from_edges([(0, 0, 4), (0, 1, 2), (1, 1, 3), (1, 0, 5)])
        cache = ScheduleCache()
        cached_schedule(g, k=2, beta=1.0, cache=cache)
        cached_schedule(g, k=1, beta=1.0, cache=cache)  # different k
        cached_schedule(g, k=2, beta=2.0, cache=cache)  # different beta
        cached_schedule(g, k=2, beta=1.0, algorithm="ggp", cache=cache)
        bigger = g.copy()
        bigger.add_edge(0, 0, 1)
        cached_schedule(bigger, k=2, beta=1.0, cache=cache)  # different graph
        assert cache.stats()["hits"] == 0
        assert cache.stats()["misses"] == 5

    def test_wrgp_keeps_its_derived_k(self):
        from repro.graph.generators import random_weight_regular

        g = random_weight_regular(3, n=5)
        cache = ScheduleCache()
        first = cached_schedule(g, k=999, beta=0.5, algorithm="wrgp", cache=cache)
        hit = cached_schedule(g, k=999, beta=0.5, algorithm="wrgp", cache=cache)
        assert cache.stats()["hits"] == 1
        assert hit.k == first.k == 5  # wrgp derives k from the graph
        assert hit.to_dict() == first.to_dict()


class TestLruAndCounters:
    def test_eviction_is_lru(self):
        graphs = [BipartiteGraph.from_edges([(0, 0, w)]) for w in (1, 2, 3)]
        cache = ScheduleCache(maxsize=2)
        cached_schedule(graphs[0], k=1, beta=0.0, cache=cache)
        cached_schedule(graphs[1], k=1, beta=0.0, cache=cache)
        cached_schedule(graphs[0], k=1, beta=0.0, cache=cache)  # refresh 0
        cached_schedule(graphs[2], k=1, beta=0.0, cache=cache)  # evicts 1
        assert cache.stats()["evictions"] == 1
        cached_schedule(graphs[0], k=1, beta=0.0, cache=cache)  # still cached
        assert cache.stats()["hits"] == 2
        cached_schedule(graphs[1], k=1, beta=0.0, cache=cache)  # gone: miss
        assert cache.stats()["misses"] == 4

    def test_obs_counters_track_hits_and_misses(self):
        g = BipartiteGraph.from_edges([(0, 0, 2), (1, 1, 3)])
        cache = ScheduleCache()
        with obs.observed() as (registry, _tracer):
            cached_schedule(g, k=2, beta=1.0, cache=cache)
            cached_schedule(g, k=2, beta=1.0, cache=cache)
            assert registry.counter("schedule_cache.misses").value == 1
            assert registry.counter("schedule_cache.hits").value == 1

    def test_clear_and_len(self):
        g = BipartiteGraph.from_edges([(0, 0, 2)])
        cache = ScheduleCache()
        cached_schedule(g, k=1, beta=0.0, cache=cache)
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["misses"] == 1  # statistics survive clear

    def test_cache_none_bypasses(self):
        g = BipartiteGraph.from_edges([(0, 0, 2)])
        s = cached_schedule(g, k=1, beta=0.0, cache=None)
        s.validate(g)


class TestValidation:
    def test_bad_maxsize_rejected(self):
        with pytest.raises(ConfigError):
            ScheduleCache(maxsize=0)

    def test_unknown_algorithm_rejected(self):
        g = BipartiteGraph.from_edges([(0, 0, 2)])
        with pytest.raises(ConfigError):
            cached_schedule(g, k=1, beta=0.0, algorithm="magic")

    def test_default_cache_exists(self):
        assert isinstance(DEFAULT_SCHEDULE_CACHE, ScheduleCache)
        assert DEFAULT_SCHEDULE_CACHE.maxsize >= 1


class TestThreadSafety:
    def test_concurrent_get_put_hammer(self):
        """Two threads hammering get/put must not corrupt the LRU dict."""
        import threading

        graphs = [
            BipartiteGraph.from_edges(
                [(0, 0, w), (0, 1, w + 1), (1, 1, w + 2)]
            )
            for w in range(1, 9)
        ]
        cache = ScheduleCache(maxsize=4)  # small: constant evictions
        reference = {
            id(g): cached_schedule(g, k=2, beta=1.0, cache=None).to_dict()
            for g in graphs
        }
        errors = []
        barrier = threading.Barrier(2)

        def hammer(offset: int) -> None:
            try:
                barrier.wait()
                for round_number in range(60):
                    g = graphs[(offset + round_number) % len(graphs)]
                    out = cached_schedule(g, k=2, beta=1.0, cache=cache)
                    if out.to_dict() != reference[id(g)]:
                        errors.append(
                            f"round {round_number}: wrong schedule returned"
                        )
            except Exception as exc:  # pragma: no cover - the failure path
                errors.append(repr(exc))

        threads = [
            threading.Thread(target=hammer, args=(i,)) for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] == 120
        assert len(cache) <= 4
