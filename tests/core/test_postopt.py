"""Tests for the step-merging post-pass."""

import pytest
from hypothesis import given, settings

from repro.core.bounds import lower_bound
from repro.core.ggp import ggp
from repro.core.oggp import oggp
from repro.core.postopt import merge_steps
from repro.core.schedule import Schedule, Step, Transfer
from tests.conftest import bipartite_graphs, ks


class TestMergeSteps:
    def test_disjoint_steps_merge(self):
        s = Schedule(
            [Step([Transfer(0, 0, 0, 4.0)]), Step([Transfer(1, 1, 1, 3.0)])],
            k=2, beta=1.0,
        )
        merged = merge_steps(s)
        assert merged.num_steps == 1
        assert merged.cost == 5.0  # beta + max(4, 3)

    def test_conflicting_steps_stay_separate(self):
        s = Schedule(
            [Step([Transfer(0, 0, 0, 4.0)]), Step([Transfer(1, 0, 1, 3.0)])],
            k=2, beta=1.0,
        )
        assert merge_steps(s).num_steps == 2

    def test_k_cap_respected(self):
        s = Schedule(
            [
                Step([Transfer(0, 0, 0, 1.0), Transfer(1, 1, 1, 1.0)]),
                Step([Transfer(2, 2, 2, 1.0)]),
            ],
            k=2, beta=1.0,
        )
        merged = merge_steps(s)
        assert merged.num_steps == 2
        assert merged.max_step_size <= 2

    def test_same_edge_chunks_never_share_a_step(self):
        s = Schedule(
            [Step([Transfer(0, 0, 0, 4.0)]), Step([Transfer(0, 0, 0, 4.0)])],
            k=4, beta=1.0,
        )
        merged = merge_steps(s)
        assert merged.num_steps == 2  # shares both ports

    def test_empty(self):
        assert merge_steps(Schedule([], k=1, beta=1.0)).num_steps == 0


class TestGuarantees:
    @given(bipartite_graphs(), ks)
    @settings(max_examples=80, deadline=None)
    def test_valid_and_never_worse(self, g, k):
        for algorithm in (ggp, oggp):
            sched = algorithm(g, k=k, beta=1.0)
            merged = merge_steps(sched)
            merged.validate(g)
            assert merged.cost <= sched.cost + 1e-9
            assert merged.cost <= 2 * lower_bound(g, k, 1.0) + 1e-6
            assert merged.num_steps <= sched.num_steps

    @given(bipartite_graphs())
    @settings(max_examples=30, deadline=None)
    def test_idempotent_cost(self, g):
        sched = oggp(g, k=3, beta=1.0)
        once = merge_steps(sched)
        twice = merge_steps(once)
        assert twice.cost == pytest.approx(once.cost)


class TestOnBaselines:
    """Where merging actually bites: fragmented baseline schedules.

    (On GGP/OGGP output the pass is empirically a no-op — peeled steps
    share their busy nodes — which is itself evidence the peeling
    schedules are already step-tight.)
    """

    @given(bipartite_graphs(), ks)
    @settings(max_examples=40, deadline=None)
    def test_merged_sequential_packs_like_list_schedule(self, g, k):
        from repro.core.baselines import sequential_schedule

        seq = sequential_schedule(g, beta=1.0)
        # Re-key to the target k before merging.
        rekeyed = Schedule(seq.steps, k=k, beta=1.0)
        merged = merge_steps(rekeyed)
        merged.validate(g)
        assert merged.cost <= rekeyed.cost + 1e-9
        if k > 1 and g.num_edges > 1:
            # With room to pack, merging must fuse at least two
            # single-edge steps whenever any two edges are disjoint.
            disjoint_pair = any(
                a.left != b.left and a.right != b.right
                for a in g.edges()
                for b in g.edges()
                if a.id < b.id
            )
            if disjoint_pair:
                assert merged.num_steps < g.num_edges
