"""Tests for local pre/post-redistribution (dispatch balancing)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.preredistribution import (
    balance_receivers,
    balance_senders,
    schedule_with_preredistribution,
)
from repro.util.errors import ConfigError


@st.composite
def matrices(draw):
    n1 = draw(st.integers(1, 6))
    n2 = draw(st.integers(1, 6))
    values = draw(
        st.lists(
            st.floats(0.0, 50.0, allow_nan=False),
            min_size=n1 * n2, max_size=n1 * n2,
        )
    )
    return np.array(values).reshape(n1, n2)


class TestBalanceSenders:
    def test_column_sums_preserved(self):
        m = np.array([[10.0, 20.0], [0.0, 0.0]])
        plan = balance_senders(m)
        assert np.allclose(plan.matrix.sum(axis=0), m.sum(axis=0))

    def test_rows_flattened_to_mean(self):
        m = np.array([[10.0, 20.0], [0.0, 0.0]])
        plan = balance_senders(m)
        assert np.allclose(plan.matrix.sum(axis=1), [15.0, 15.0])

    def test_moved_volume_is_minimal(self):
        m = np.array([[12.0, 0.0], [0.0, 4.0]])
        plan = balance_senders(m)
        # Excess above the mean (8) at row 0 is exactly what must move.
        assert plan.moved_volume == pytest.approx(4.0)

    def test_balanced_input_moves_nothing(self):
        m = np.array([[5.0, 0.0], [0.0, 5.0]])
        plan = balance_senders(m)
        assert plan.moves == []
        assert np.allclose(plan.matrix, m)

    def test_local_phase_time(self):
        m = np.array([[12.0, 0.0], [0.0, 4.0]])
        plan = balance_senders(m)
        assert plan.local_phase_time(local_rate=2.0) == pytest.approx(2.0)
        assert balance_senders(np.eye(2)).local_phase_time(1.0) == 0.0

    def test_bad_local_rate(self):
        with pytest.raises(ConfigError):
            balance_senders(np.ones((2, 2))).local_phase_time(0.0)

    def test_validation(self):
        with pytest.raises(ConfigError):
            balance_senders(np.array([1.0, 2.0]))
        with pytest.raises(ConfigError):
            balance_senders(np.array([[-1.0]]))

    @given(matrices())
    @settings(max_examples=80)
    def test_invariants(self, m):
        plan = balance_senders(m)
        # Conservation: totals and column sums unchanged.
        assert plan.matrix.sum() == pytest.approx(m.sum())
        assert np.allclose(plan.matrix.sum(axis=0), m.sum(axis=0), atol=1e-9)
        assert (plan.matrix >= -1e-9).all()
        # Flattening: max row sum does not exceed mean by more than eps.
        if m.shape[0] > 1:
            target = m.sum() / m.shape[0]
            assert plan.matrix.sum(axis=1).max() <= target + 1e-6
        # Moved volume equals the total excess above the mean.
        excess = np.maximum(0.0, m.sum(axis=1) - m.sum() / m.shape[0]).sum()
        assert plan.moved_volume == pytest.approx(excess, abs=1e-6)


class TestBalanceReceivers:
    @given(matrices())
    @settings(max_examples=60)
    def test_symmetric_to_sender_balancing(self, m):
        plan = balance_receivers(m)
        assert plan.matrix.sum() == pytest.approx(m.sum())
        assert np.allclose(plan.matrix.sum(axis=1), m.sum(axis=1), atol=1e-9)
        if m.shape[1] > 1:
            target = m.sum() / m.shape[1]
            assert plan.matrix.sum(axis=0).max() <= target + 1e-6

    def test_moves_are_cluster2_forwardings(self):
        m = np.array([[10.0, 0.0]])
        plan = balance_receivers(m)
        (move,) = plan.moves
        # Half of receiver 0's load is redirected: it lands at the
        # underloaded receiver 1 and is forwarded locally to receiver 0.
        assert move.holder_from == 1  # lands here over the backbone
        assert move.holder_to == 0    # true destination (= dst)
        assert move.dst == 0
        assert move.volume == pytest.approx(5.0)


class TestEndToEnd:
    def test_balancing_helps_hotspot(self):
        # One sender owns almost everything: W(G) >> P/k.
        m = np.zeros((6, 6))
        m[0, :] = 60.0
        plain = schedule_with_preredistribution(
            m, k=4, beta=0.5, flow_rate=10.0, local_rate=100.0,
            balance_send=False, balance_recv=False,
        )
        balanced = schedule_with_preredistribution(
            m, k=4, beta=0.5, flow_rate=10.0, local_rate=100.0,
        )
        assert balanced.total_time < plain.total_time
        assert balanced.pre_time > 0

    def test_uniform_pattern_unaffected(self):
        m = np.full((4, 4), 10.0)
        plain = schedule_with_preredistribution(
            m, k=4, beta=0.5, flow_rate=10.0, local_rate=100.0,
            balance_send=False, balance_recv=False,
        )
        balanced = schedule_with_preredistribution(
            m, k=4, beta=0.5, flow_rate=10.0, local_rate=100.0,
        )
        assert balanced.total_time == pytest.approx(plain.total_time)
        assert balanced.moved_volume == 0.0

    def test_slow_local_network_not_worth_it(self):
        m = np.zeros((4, 4))
        m[0, :] = 40.0
        slow = schedule_with_preredistribution(
            m, k=4, beta=0.5, flow_rate=10.0, local_rate=0.1,
        )
        plain = schedule_with_preredistribution(
            m, k=4, beta=0.5, flow_rate=10.0, local_rate=0.1,
            balance_send=False, balance_recv=False,
        )
        # The caller can see this from the breakdown and skip balancing.
        assert slow.pre_time > plain.total_time

    def test_empty_matrix(self):
        out = schedule_with_preredistribution(
            np.zeros((3, 3)), k=2, beta=1.0, flow_rate=1.0, local_rate=1.0
        )
        assert out.total_time == 0.0

    def test_bad_flow_rate(self):
        with pytest.raises(ConfigError):
            schedule_with_preredistribution(
                np.ones((2, 2)), k=1, beta=0.0, flow_rate=0.0, local_rate=1.0
            )
