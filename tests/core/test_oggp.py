"""Tests for OGGP and its relationship to GGP."""

import pytest
from hypothesis import given, settings

from repro.core.bounds import lower_bound
from repro.core.ggp import ggp
from repro.core.oggp import oggp
from repro.graph.bipartite import BipartiteGraph
from tests.conftest import bipartite_graphs, betas, ks


class TestOggp:
    @given(bipartite_graphs(), ks, betas)
    @settings(max_examples=100, deadline=None)
    def test_validity_and_guarantee(self, g, k, beta):
        s = oggp(g, k=k, beta=beta)
        s.validate(g)
        assert s.cost <= 2.0 * lower_bound(g, k, beta) + 1e-6
        assert s.max_step_size <= k

    @given(bipartite_graphs(max_side=5, max_edges=10), ks)
    @settings(max_examples=60, deadline=None)
    def test_matches_ggp_with_bottleneck_strategy(self, g, k):
        assert (
            oggp(g, k=k, beta=1.0).to_json()
            == ggp(g, k=k, beta=1.0, matching="bottleneck").to_json()
        )

    def test_fewer_or_equal_steps_than_arbitrary_ggp_on_average(self):
        # Not a per-instance theorem, so assert on an ensemble.
        from repro.graph.generators import random_bipartite

        total_ggp = 0
        total_oggp = 0
        for seed in range(25):
            g = random_bipartite(seed, max_side=8, max_edges=30)
            total_ggp += ggp(g, 4, 1.0, matching="arbitrary").num_steps
            total_oggp += oggp(g, 4, 1.0).num_steps
        assert total_oggp <= total_ggp

    def test_first_step_peel_is_maximal(self):
        # OGGP's first step must be at least as long as GGP-arbitrary's.
        g = BipartiteGraph.from_edges(
            [(0, 0, 1), (1, 1, 10), (0, 1, 5), (1, 0, 6)]
        )
        s = oggp(g, k=2, beta=1.0)
        assert s.steps[0].duration >= 5.0

    def test_empty_graph(self):
        s = oggp(BipartiteGraph(), k=2, beta=1.0)
        assert s.num_steps == 0
