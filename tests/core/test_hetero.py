"""Tests for heterogeneous-platform scheduling (extension E4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hetero import (
    HeteroPlatform,
    enforce_capacity,
    evaluate_hetero_schedule,
    hetero_lower_bound,
    hetero_schedule,
    hetero_schedule_oggp,
    schedule_homogeneous_equivalent,
)
from repro.util.errors import ConfigError, ScheduleError


def mixed_platform(beta: float = 0.1) -> HeteroPlatform:
    return HeteroPlatform(
        send_rates=(10.0, 10.0, 100.0, 100.0),
        recv_rates=(10.0, 10.0, 100.0, 100.0),
        backbone=200.0,
        beta=beta,
    )


@st.composite
def volume_matrices(draw):
    n1 = 4
    n2 = 4
    values = draw(
        st.lists(st.floats(0.0, 500.0, allow_nan=False),
                 min_size=n1 * n2, max_size=n1 * n2)
    )
    return np.array(values).reshape(n1, n2)


class TestPlatform:
    def test_derived_counts(self):
        p = mixed_platform()
        assert p.flow_rate(0, 0) == 10.0
        assert p.flow_rate(0, 2) == 10.0
        assert p.flow_rate(2, 3) == 100.0
        assert p.k_safe() == 2     # 200 / 100
        assert p.k_optimistic() == 4  # 200 / 10 capped by node count

    def test_validation(self):
        with pytest.raises(ConfigError):
            HeteroPlatform((), (1.0,), 10.0)
        with pytest.raises(ConfigError):
            HeteroPlatform((0.0,), (1.0,), 10.0)
        with pytest.raises(ConfigError):
            HeteroPlatform((1.0,), (1.0,), 0.0)
        with pytest.raises(ConfigError):
            HeteroPlatform((1.0,), (1.0,), 10.0, beta=-1)


class TestLowerBound:
    def test_single_flow(self):
        p = mixed_platform(beta=0.5)
        vol = np.zeros((4, 4))
        vol[0, 0] = 100.0  # rate 10 -> 10 s transmission, 1 step
        assert hetero_lower_bound(p, vol) == pytest.approx(10.5)

    def test_backbone_bound_dominates(self):
        p = mixed_platform(beta=0.0)
        vol = np.zeros((4, 4))
        # Two fast disjoint flows: node time 4 each, backbone 800/200 = 4.
        vol[2, 2] = 400.0
        vol[3, 3] = 400.0
        assert hetero_lower_bound(p, vol) == pytest.approx(4.0)

    def test_empty(self):
        assert hetero_lower_bound(mixed_platform(), np.zeros((4, 4))) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ConfigError):
            hetero_lower_bound(mixed_platform(), np.zeros((2, 2)))


class TestSchedulers:
    @given(volume_matrices())
    @settings(max_examples=60, deadline=None)
    def test_greedy_valid_and_bounded(self, vol):
        p = mixed_platform()
        sched = hetero_schedule(p, vol)
        sched.validate(vol)
        bound = hetero_lower_bound(p, vol)
        cost = evaluate_hetero_schedule(sched)
        if bound > 0:
            assert cost >= bound - 1e-6
            # No guarantee proven; empirical sanity ceiling.
            assert cost <= 4.0 * bound + 1e-6

    @given(volume_matrices())
    @settings(max_examples=40, deadline=None)
    def test_safe_mode_is_capacity_feasible(self, vol):
        p = mixed_platform()
        if not (vol > 0).any():
            return
        sched = schedule_homogeneous_equivalent(p, vol, "safe")
        sched.validate(vol)  # validate() enforces the capacity

    @given(volume_matrices())
    @settings(max_examples=40, deadline=None)
    def test_forced_capacity_pass_is_feasible(self, vol):
        p = mixed_platform()
        if not (vol > 0).any():
            return
        sched = schedule_homogeneous_equivalent(p, vol, "optimistic")
        feasible = enforce_capacity(sched, always=True)
        feasible.validate(vol)

    def test_unknown_mode(self):
        with pytest.raises(ConfigError):
            schedule_homogeneous_equivalent(
                mixed_platform(), np.ones((4, 4)), "bogus"
            )

    def test_oversubscribed_validate_raises(self):
        p = mixed_platform()
        vol = np.zeros((4, 4))
        vol[2, 2] = 100.0
        vol[3, 3] = 100.0
        vol[2, 3] = 0.0
        sched = schedule_homogeneous_equivalent(p, vol, "optimistic")
        # Force an infeasible hand-made step to check the validator.
        from repro.core.hetero import HeteroSchedule, HeteroTransfer

        bad = HeteroSchedule(
            steps=[[
                HeteroTransfer(2, 2, 100.0, 100.0),
                HeteroTransfer(3, 3, 100.0, 100.0),
                HeteroTransfer(2, 3, 1.0, 100.0),  # not even a matching
            ]],
            platform=p,
        )
        with pytest.raises(ScheduleError):
            bad.validate(vol)
        del sched


class TestEvaluation:
    def test_penalty_only_hits_oversubscription(self):
        p = mixed_platform()
        vol = np.zeros((4, 4))
        vol[0, 0] = 50.0
        sched = hetero_schedule(p, vol)
        assert evaluate_hetero_schedule(sched, 0.0) == pytest.approx(
            evaluate_hetero_schedule(sched, 5.0)
        )

    def test_negative_penalty_rejected(self):
        p = mixed_platform()
        sched = hetero_schedule(p, np.zeros((4, 4)))
        with pytest.raises(ConfigError):
            evaluate_hetero_schedule(sched, -1.0)

    @given(volume_matrices())
    @settings(max_examples=30, deadline=None)
    def test_oggp_cap_no_worse_than_optimistic_under_penalty(self, vol):
        p = mixed_platform()
        if not (vol > 0).any():
            return
        penalty = 2.0
        optimistic = schedule_homogeneous_equivalent(p, vol, "optimistic")
        capped = hetero_schedule_oggp(p, vol, congestion_penalty=penalty)
        assert evaluate_hetero_schedule(capped, penalty) <= (
            evaluate_hetero_schedule(optimistic, penalty) + 1e-6
        )
