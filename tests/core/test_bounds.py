"""Tests for the Cohen–Jeannot–Padoy lower bound."""

import math

import pytest
from hypothesis import given, settings

from repro.core.baselines import sequential_schedule
from repro.core.bounds import (
    evaluation_ratio,
    lower_bound,
    lower_bound_report,
)
from repro.graph.bipartite import BipartiteGraph
from repro.util.errors import ConfigError
from tests.conftest import bipartite_graphs, betas, ks


class TestReport:
    def test_fig2_breakdown(self, fig2_graph):
        report = lower_bound_report(fig2_graph, k=3, beta=1.0)
        assert report.max_node_weight == 8  # W(G)
        assert report.bandwidth_bound == pytest.approx(23 / 3)  # P/k
        assert report.max_degree == 2
        assert report.edge_step_bound == math.ceil(5 / 3)
        assert report.eta_c == 8
        assert report.eta_s == 2
        assert report.value == 10.0

    def test_k_one_equals_serial_cost_floor(self, small_graph):
        # With k=1 the bound is P + beta*m, which sequential achieves.
        beta = 2.0
        bound = lower_bound(small_graph, 1, beta)
        seq = sequential_schedule(small_graph, beta)
        assert seq.cost == pytest.approx(bound)

    def test_empty_graph(self):
        assert lower_bound(BipartiteGraph(), k=3, beta=1.0) == 0.0

    def test_monotone_in_beta(self, small_graph):
        assert lower_bound(small_graph, 2, 2.0) > lower_bound(small_graph, 2, 1.0)

    def test_nonincreasing_in_k(self, small_graph):
        values = [lower_bound(small_graph, k, 1.0) for k in range(1, 6)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_invalid_params(self, small_graph):
        with pytest.raises(ConfigError):
            lower_bound(small_graph, 0, 1.0)
        with pytest.raises(ConfigError):
            lower_bound(small_graph, 1, -0.5)


class TestEvaluationRatio:
    def test_normal(self):
        assert evaluation_ratio(15.0, 10.0) == 1.5

    def test_empty_instance(self):
        assert evaluation_ratio(0.0, 0.0) == 1.0

    def test_zero_bound_with_cost_raises(self):
        with pytest.raises(ConfigError):
            evaluation_ratio(1.0, 0.0)


class TestSoundness:
    @given(bipartite_graphs(), ks, betas)
    @settings(max_examples=60, deadline=None)
    def test_bound_never_exceeds_a_feasible_cost(self, g, k, beta):
        # The sequential schedule is feasible for every k >= 1, so the
        # bound must be below its cost.
        seq = sequential_schedule(g, beta)
        assert lower_bound(g, k, beta) <= seq.cost + 1e-9

    @given(bipartite_graphs())
    @settings(max_examples=40)
    def test_bound_positive_for_nonempty(self, g):
        assert lower_bound(g, 3, 0.0) > 0
