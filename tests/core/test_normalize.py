"""Tests for β-normalisation."""

import math
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.normalize import normalize_weights
from repro.graph.bipartite import BipartiteGraph
from repro.util.errors import ConfigError
from tests.conftest import bipartite_graphs


class TestPositiveBeta:
    def test_round_up_to_integers(self):
        g = BipartiteGraph.from_edges([(0, 0, 2.5), (1, 1, 3.0)])
        problem = normalize_weights(g, beta=1.0)
        weights = sorted(e.weight for e in problem.graph.edges())
        assert weights == [3, 3]
        assert all(isinstance(w, int) for w in weights)
        assert problem.scale == 1.0

    def test_scale_is_beta(self):
        g = BipartiteGraph.from_edges([(0, 0, 10)])
        problem = normalize_weights(g, beta=4.0)
        assert problem.scale == 4.0
        assert next(iter(problem.graph.edges())).weight == math.ceil(10 / 4)

    def test_exact_division_no_inflation(self):
        g = BipartiteGraph.from_edges([(0, 0, 12)])
        problem = normalize_weights(g, beta=3.0)
        assert next(iter(problem.graph.edges())).weight == 4

    def test_float_roundup_artifacts_avoided(self):
        # 0.3 / 0.1 = 2.9999... in floats; exact rationals give 3 not 4.
        g = BipartiteGraph.from_edges([(0, 0, 0.3)])
        problem = normalize_weights(g, beta=0.1)
        assert next(iter(problem.graph.edges())).weight == 3

    def test_weights_below_beta_become_one(self):
        g = BipartiteGraph.from_edges([(0, 0, 0.01)])
        problem = normalize_weights(g, beta=5.0)
        assert next(iter(problem.graph.edges())).weight == 1

    def test_original_weights_recorded(self):
        g = BipartiteGraph.from_edges([(0, 0, 2.5), (1, 1, 7.0)])
        problem = normalize_weights(g, beta=2.0)
        assert sorted(problem.original_weights.values()) == [2.5, 7.0]


class TestZeroBeta:
    def test_fraction_conversion(self):
        g = BipartiteGraph.from_edges([(0, 0, 2.5)])
        problem = normalize_weights(g, beta=0.0)
        w = next(iter(problem.graph.edges())).weight
        assert isinstance(w, Fraction)
        assert w == Fraction(5, 2)
        assert problem.scale == 1.0

    def test_exact_for_binary_floats(self):
        g = BipartiteGraph.from_edges([(0, 0, 0.1)])
        problem = normalize_weights(g, beta=0.0)
        w = next(iter(problem.graph.edges())).weight
        assert float(w) == 0.1  # exact binary representation preserved


class TestValidation:
    def test_negative_beta_rejected(self):
        g = BipartiteGraph.from_edges([(0, 0, 1)])
        with pytest.raises(ConfigError):
            normalize_weights(g, beta=-1.0)

    @given(bipartite_graphs(integer_weights=False), st.sampled_from([0.5, 1.0, 2.0]))
    @settings(max_examples=40)
    def test_inflation_below_beta_per_edge(self, g, beta):
        problem = normalize_weights(g, beta)
        for e in g.edges():
            normalized = problem.graph.edge(e.id).weight
            inflated = normalized * beta
            assert inflated >= e.weight - 1e-12
            assert inflated < e.weight + beta + 1e-12

    @given(bipartite_graphs())
    @settings(max_examples=40)
    def test_structure_preserved(self, g):
        problem = normalize_weights(g, 1.0)
        assert problem.graph.num_edges == g.num_edges
        assert problem.graph.left_nodes() == g.left_nodes()
        assert problem.graph.right_nodes() == g.right_nodes()
