"""Tests for the structured solution verifier."""

import pytest
from hypothesis import given, settings

from repro.core.oggp import oggp
from repro.core.schedule import Schedule, Step, Transfer
from repro.core.verify import (
    ViolationKind,
    verify_solution,
    verify_solution_dict,
)
from repro.graph.bipartite import BipartiteGraph
from tests.conftest import bipartite_graphs


def graph2() -> BipartiteGraph:
    return BipartiteGraph.from_edges([(0, 0, 4.0), (1, 1, 3.0)])


class TestVerifySolution:
    def test_clean_schedule(self):
        g = graph2()
        report = verify_solution(g, oggp(g, k=2, beta=1.0))
        assert report.ok
        assert report.edges_checked == 2
        assert "OK" in report.summary()

    def test_under_delivery(self):
        g = graph2()
        e0, _ = g.edges_sorted()
        sched = Schedule([Step([Transfer(e0.id, 0, 0, 4.0)])], k=2, beta=0.0)
        report = verify_solution(g, sched)
        assert not report.ok
        assert report.by_kind() == {ViolationKind.UNDER_DELIVERED: 1}

    def test_over_delivery(self):
        g = graph2()
        e0, e1 = g.edges_sorted()
        sched = Schedule(
            [
                Step([Transfer(e0.id, 0, 0, 4.0), Transfer(e1.id, 1, 1, 3.0)]),
                Step([Transfer(e0.id, 0, 0, 1.0)]),
            ],
            k=2, beta=0.0,
        )
        report = verify_solution(g, sched)
        assert ViolationKind.OVER_DELIVERED in report.by_kind()

    def test_multiple_violations_all_reported(self):
        g = graph2()
        sched = Schedule(
            [Step([Transfer(999, 0, 0, 4.0), Transfer(998, 1, 1, 3.0)])],
            k=1, beta=0.0,
        )
        report = verify_solution(g, sched)
        kinds = report.by_kind()
        assert kinds[ViolationKind.K_EXCEEDED] == 1
        assert kinds[ViolationKind.UNKNOWN_EDGE] == 2
        assert kinds[ViolationKind.UNDER_DELIVERED] == 2
        assert "violations" in report.summary()

    def test_wrong_endpoints(self):
        g = graph2()
        e0, e1 = g.edges_sorted()
        sched = Schedule(
            [
                Step([Transfer(e0.id, 0, 1, 4.0)]),
                Step([Transfer(e1.id, 1, 1, 3.0)]),
            ],
            k=2, beta=0.0,
        )
        report = verify_solution(g, sched)
        assert ViolationKind.WRONG_ENDPOINTS in report.by_kind()

    @given(bipartite_graphs())
    @settings(max_examples=40, deadline=None)
    def test_agrees_with_validate(self, g):
        sched = oggp(g, k=3, beta=1.0)
        report = verify_solution(g, sched)
        assert report.ok  # validate() would not raise either
        sched.validate(g)


class TestVerifyDict:
    def test_clean_roundtrip(self):
        g = graph2()
        sched = oggp(g, k=2, beta=1.0)
        report = verify_solution_dict(g, sched.to_dict())
        assert report.ok

    def test_sender_conflict_in_raw_json(self):
        g = graph2()
        e0, e1 = g.edges_sorted()
        data = {
            "k": 2,
            "beta": 0.0,
            "steps": [
                {
                    "duration": 4.0,
                    "transfers": [
                        {"edge_id": e0.id, "left": 0, "right": 0, "amount": 4.0},
                        {"edge_id": e1.id, "left": 0, "right": 1, "amount": 3.0},
                    ],
                }
            ],
        }
        report = verify_solution_dict(g, data)
        assert ViolationKind.SENDER_CONFLICT in report.by_kind()

    def test_negative_amount_in_raw_json(self):
        g = graph2()
        e0, e1 = g.edges_sorted()
        data = {
            "k": 2,
            "beta": 0.0,
            "steps": [
                {"transfers": [
                    {"edge_id": e0.id, "left": 0, "right": 0, "amount": -1.0},
                    {"edge_id": e1.id, "left": 1, "right": 1, "amount": 3.0},
                ]}
            ],
        }
        report = verify_solution_dict(g, data)
        kinds = report.by_kind()
        assert ViolationKind.NON_POSITIVE_AMOUNT in kinds
        assert ViolationKind.UNDER_DELIVERED in kinds  # e0 never ships

    def test_short_duration_in_raw_json(self):
        g = graph2()
        e0, e1 = g.edges_sorted()
        data = {
            "k": 2,
            "beta": 0.0,
            "steps": [
                {"duration": 1.0, "transfers": [
                    {"edge_id": e0.id, "left": 0, "right": 0, "amount": 4.0},
                ]},
                {"transfers": [
                    {"edge_id": e1.id, "left": 1, "right": 1, "amount": 3.0},
                ]},
            ],
        }
        report = verify_solution_dict(g, data)
        assert ViolationKind.DURATION_TOO_SHORT in report.by_kind()
