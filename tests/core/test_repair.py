"""Unit and property tests for repro.core.repair."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cache import cached_schedule
from repro.core.repair import (
    RepairResult,
    TrafficDelta,
    apply_traffic_delta,
    repair_plan,
)
from repro.core.schedule import Schedule
from repro.graph.bipartite import BipartiteGraph
from repro.resilience.churn import ChurnSpec
from repro.util.errors import ConfigError
from tests.conftest import bipartite_graphs


def edges_of(graph: BipartiteGraph) -> dict[int, tuple[int, int, float]]:
    return {
        e.id: (e.left, e.right, float(e.weight)) for e in graph.edges_sorted()
    }


def plan_of(graph: BipartiteGraph, k: int = 3, beta: float = 1.0) -> Schedule:
    return cached_schedule(graph, k, beta, algorithm="oggp", cache=None)


def prefix_delivered(plan: Schedule, pos: int) -> dict[int, float]:
    return Schedule(plan.steps[:pos], plan.k, plan.beta).transferred_per_edge()


SMALL = BipartiteGraph.from_edges(
    [(0, 0, 4), (0, 1, 2), (1, 1, 3), (2, 0, 1), (2, 2, 5)]
)


class TestTrafficDelta:
    def test_bool_and_size(self):
        assert not TrafficDelta()
        delta = TrafficDelta(inject=((9, 0, 1, 2.0),), remove=(1,), resize=((2, 5.0),))
        assert delta and delta.size == 3

    def test_doc_round_trip(self):
        delta = TrafficDelta(
            inject=((9, 0, 1, 2.5),), remove=(1, 3), resize=((2, 5.0),)
        )
        assert TrafficDelta.from_doc(delta.to_doc()) == delta

    def test_doc_round_trip_int_amounts(self):
        delta = TrafficDelta(inject=((9, 0, 1, 2),), resize=((2, 5),))
        back = TrafficDelta.from_doc(delta.to_doc(), amount_kind="int")
        assert back == delta
        assert isinstance(back.inject[0][3], int)


class TestApplyTrafficDelta:
    def setup_method(self):
        self.edges = edges_of(SMALL)

    def test_inject_adds_edge(self):
        out = apply_traffic_delta(
            self.edges, {}, TrafficDelta(inject=((99, 1, 2, 7.0),))
        )
        assert out[99] == (1, 2, 7.0)
        assert 99 not in self.edges  # input never mutated

    def test_remove_keeps_delivered_prefix(self):
        out = apply_traffic_delta(
            self.edges, {0: 1.5}, TrafficDelta(remove=(0,))
        )
        assert out[0] == (0, 0, 1.5)

    def test_remove_undelivered_edge_disappears(self):
        out = apply_traffic_delta(self.edges, {}, TrafficDelta(remove=(0,)))
        assert 0 not in out

    def test_resize_clamps_to_delivered(self):
        out = apply_traffic_delta(
            self.edges, {0: 3.0}, TrafficDelta(resize=((0, 1.0),))
        )
        assert out[0] == (0, 0, 3.0)

    def test_resize_grows(self):
        out = apply_traffic_delta(
            self.edges, {}, TrafficDelta(resize=((0, 11.0),))
        )
        assert out[0] == (0, 0, 11.0)

    @pytest.mark.parametrize(
        "delta",
        [
            TrafficDelta(inject=((0, 0, 0, 1.0),)),  # id already exists
            TrafficDelta(inject=((99, 0, 0, 0.0),)),  # non-positive amount
            TrafficDelta(remove=(12345,)),  # unknown edge
            TrafficDelta(resize=((12345, 1.0),)),  # unknown edge
            TrafficDelta(resize=((0, -1.0),)),  # non-positive total
            TrafficDelta(remove=(0,), resize=((0, 2.0),)),  # targeted twice
        ],
    )
    def test_invalid_deltas_raise(self, delta):
        with pytest.raises(ConfigError):
            apply_traffic_delta(self.edges, {}, delta)


class TestRepairPlan:
    def test_clean_plan_is_noop_and_bit_identical(self):
        plan = plan_of(SMALL)
        pos = len(plan.steps) // 2
        delivered = prefix_delivered(plan, pos)
        result = repair_plan(plan, pos, delivered, edges_of(SMALL))
        assert result.mode == "noop"
        # The suffix steps are the *same objects* — provably untouched.
        assert all(
            a is b
            for a, b in zip(result.remainder.steps, plan.steps[pos:])
        )
        assert len(result.remainder.steps) == len(plan.steps) - pos

    def test_injected_edge_splices(self):
        plan = plan_of(SMALL)
        pos = 1
        delivered = prefix_delivered(plan, pos)
        edges = dict(edges_of(SMALL))
        edges[99] = (1, 0, 3.0)
        result = repair_plan(plan, pos, delivered, edges)
        assert result.mode == "splice"
        assert 99 in result.affected
        shipped = result.remainder.transferred_per_edge()
        assert shipped[99] == pytest.approx(3.0)

    def test_fault_shortfall_heals_without_any_delta(self):
        plan = plan_of(SMALL)
        pos = len(plan.steps) // 2
        delivered = prefix_delivered(plan, pos)
        # Drop part of one edge's delivery: a fault, not churn.
        victim = next(eid for eid, amt in delivered.items() if amt > 0)
        delivered[victim] -= 0.5 * delivered[victim]
        result = repair_plan(plan, pos, delivered, edges_of(SMALL))
        assert result.mode in ("splice", "fallback")
        assert victim in result.affected
        want = {
            eid: total - delivered.get(eid, 0.0)
            for eid, (_, _, total) in edges_of(SMALL).items()
        }
        shipped = result.remainder.transferred_per_edge()
        for eid, amount in want.items():
            assert shipped.get(eid, 0.0) == pytest.approx(amount)

    def test_budget_fallback(self):
        plan = plan_of(SMALL)
        edges = {
            eid: (left, right, total * 2.0)
            for eid, (left, right, total) in edges_of(SMALL).items()
        }
        result = repair_plan(plan, 0, {}, edges, max_affected_frac=0.1)
        assert result.mode == "fallback"
        assert result.reason.startswith("budget")
        assert result.spliced_cost is None  # splice never built
        assert result.full_cost == result.remainder.cost

    def test_quality_fallback(self):
        plan = plan_of(SMALL)
        pos = 1
        delivered = prefix_delivered(plan, pos)
        edges = dict(edges_of(SMALL))
        edges[99] = (1, 0, 3.0)
        result = repair_plan(
            plan, pos, delivered, edges, max_ratio=1.0, max_affected_frac=1.0
        )
        if result.mode == "fallback":  # max_ratio=1.0 is unreachable
            assert result.reason.startswith("quality")
            assert result.spliced_cost is not None

    def test_everything_removed_returns_empty_plan(self):
        plan = plan_of(SMALL)
        result = repair_plan(plan, 0, {}, {})
        # All suffix chunks dropped, nothing left to reschedule: an
        # empty splice, not a fallback.
        assert result.mode == "splice"
        assert result.remainder.steps == ()
        assert result.repair_steps == 0
        assert result.pending == {}

    def test_executed_steps_out_of_range(self):
        plan = plan_of(SMALL)
        with pytest.raises(ConfigError):
            repair_plan(plan, len(plan.steps) + 1, {}, edges_of(SMALL))
        with pytest.raises(ConfigError):
            repair_plan(plan, -1, {}, edges_of(SMALL))

    def test_bad_bounds_raise(self):
        plan = plan_of(SMALL)
        with pytest.raises(ConfigError):
            repair_plan(plan, 0, {}, edges_of(SMALL), max_ratio=0.5)
        with pytest.raises(ConfigError):
            repair_plan(plan, 0, {}, edges_of(SMALL), max_affected_frac=2.0)

    def test_result_ratio(self):
        plan = plan_of(SMALL)
        edges = dict(edges_of(SMALL))
        edges[99] = (1, 0, 3.0)
        result = repair_plan(plan, 0, {}, edges)
        assert isinstance(result, RepairResult)
        assert result.ratio >= 1.0


@st.composite
def executed_plans(draw):
    """(plan, executed_steps, delivered, edges) of a clean partial run."""
    graph = draw(bipartite_graphs(max_side=4, max_edges=8))
    k = draw(st.integers(1, 4))
    beta = draw(st.sampled_from([0.0, 0.5, 1.0]))
    plan = cached_schedule(graph, k, beta, algorithm="oggp", cache=None)
    pos = draw(st.integers(0, len(plan.steps)))
    delivered = prefix_delivered(plan, pos)
    return plan, pos, delivered, edges_of(graph)


class TestRepairProperties:
    @given(executed_plans())
    @settings(max_examples=60, deadline=None)
    def test_empty_delta_on_clean_plan_is_noop(self, case):
        """Hypothesis: no churn + clean execution => bit-identical suffix."""
        plan, pos, delivered, edges = case
        result = repair_plan(plan, pos, delivered, edges)
        assert result.mode == "noop"
        suffix = plan.steps[pos:]
        assert len(result.remainder.steps) == len(suffix)
        assert all(a is b for a, b in zip(result.remainder.steps, suffix))
        assert result.remainder.k == plan.k
        assert result.remainder.beta == plan.beta

    @given(
        executed_plans(),
        st.integers(0, 2**31 - 1),
        st.floats(1.05, 3.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_churned_repair_delivers_exactly_the_new_matrix(
        self, case, churn_seed, max_ratio
    ):
        """Churn-fuzz: every repaired plan verifies and ships the final traffic."""
        plan, pos, delivered, edges = case
        churn = ChurnSpec(
            seed=churn_seed,
            inject_rate=1.5,
            remove_rate=1.0,
            resize_rate=1.0,
            events=1,
        ).process()
        shape = (
            1 + max((l for l, _, _ in edges.values()), default=0),
            1 + max((r for _, r, _ in edges.values()), default=0),
        )
        delta = churn.delta_for_event(0, edges, delivered, shape=shape)
        new_edges = apply_traffic_delta(edges, delivered, delta)
        # repair_plan verifies internally (raises on a bad plan)...
        result = repair_plan(
            plan, pos, delivered, new_edges, max_ratio=max_ratio
        )
        # ...and the remainder must ship exactly the remaining traffic.
        want = {}
        for eid, (_, _, total) in new_edges.items():
            remaining = total - delivered.get(eid, 0.0)
            if remaining > 1e-9 * max(1.0, total):
                want[eid] = remaining
        shipped = result.remainder.transferred_per_edge()
        assert set(shipped) == set(want)
        for eid, amount in want.items():
            assert shipped[eid] == pytest.approx(amount)
        # 1-port invariant holds step by step (Step enforces it, but a
        # spliced plan must not have snuck duplicates past it).
        for step in result.remainder.steps:
            lefts = [t.left for t in step.transfers]
            rights = [t.right for t in step.transfers]
            assert len(set(lefts)) == len(lefts)
            assert len(set(rights)) == len(rights)
