"""Stress and interaction tests for the DES kernel."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des import Barrier, Environment, Resource, Store


class TestManyProcesses:
    def test_thousand_timers_in_order(self):
        env = Environment()
        fired = []
        for i in range(1000):
            env.timeout((1000 - i) * 0.001).add_callback(
                lambda _e, j=i: fired.append(j)
            )
        env.run()
        assert fired == list(range(999, -1, -1))

    def test_producer_consumer_pipeline(self):
        env = Environment()
        stage1: Store = Store(env)
        stage2: Store = Store(env)
        results = []

        def producer():
            for i in range(50):
                yield env.timeout(0.1)
                stage1.put(i)

        def worker():
            while True:
                item = yield stage1.get()
                yield env.timeout(0.05)
                stage2.put(item * 2)

        def consumer():
            for _ in range(50):
                item = yield stage2.get()
                results.append(item)

        env.process(producer())
        env.process(worker())
        done = env.process(consumer())
        env.run(done)
        assert results == [i * 2 for i in range(50)]

    def test_resource_throughput_accounting(self):
        env = Environment()
        resource = Resource(env, capacity=3)
        completed = []

        def job(i):
            req = resource.request()
            yield req
            yield env.timeout(1.0)
            resource.release()
            completed.append((i, env.now))

        for i in range(30):
            env.process(job(i))
        env.run()
        # 30 unit jobs on 3 servers: makespan exactly 10.
        assert max(t for _, t in completed) == pytest.approx(10.0)
        assert len(completed) == 30

    def test_barrier_with_many_parties_and_rounds(self):
        env = Environment()
        barrier = Barrier(env, parties=20)
        log = []

        def party(i):
            for round_no in range(5):
                yield env.timeout(0.01 * (i + 1))
                gen = yield barrier.wait()
                log.append((round_no, gen))

        for i in range(20):
            env.process(party(i))
        env.run()
        assert len(log) == 100
        assert all(round_no == gen for round_no, gen in log)


class TestDeterminism:
    @given(st.lists(st.floats(0.001, 10.0, allow_nan=False), min_size=1,
                    max_size=50))
    @settings(max_examples=40)
    def test_event_order_is_reproducible(self, delays):
        def run_once():
            env = Environment()
            order = []
            for i, d in enumerate(delays):
                env.timeout(d).add_callback(lambda _e, j=i: order.append(j))
            env.run()
            return order

        assert run_once() == run_once()

    @given(st.lists(st.floats(0.0, 5.0, allow_nan=False), min_size=2,
                    max_size=30))
    @settings(max_examples=40)
    def test_clock_is_monotone(self, delays):
        env = Environment()
        stamps = []

        def proc():
            for d in delays:
                yield env.timeout(d)
                stamps.append(env.now)

        env.process(proc())
        env.run()
        assert stamps == sorted(stamps)
        assert env.now == pytest.approx(sum(delays))
