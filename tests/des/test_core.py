"""Tests for the DES kernel: events, processes, conditions, run loop."""

import pytest

from repro.des import AllOf, AnyOf, Environment
from repro.util.errors import SimulationError


class TestEvents:
    def test_succeed_and_value(self):
        env = Environment()
        ev = env.event()
        assert not ev.triggered
        ev.succeed(42)
        assert ev.triggered
        env.run()
        assert ev.processed
        assert ev.value == 42

    def test_double_trigger_rejected(self):
        env = Environment()
        ev = env.event()
        ev.succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)

    def test_value_before_trigger_raises(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.event().value

    def test_fail_requires_exception(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.event().fail("not an exception")  # type: ignore[arg-type]

    def test_unwaited_failure_surfaces(self):
        env = Environment()
        env.event().fail(ValueError("boom"))
        with pytest.raises(ValueError, match="boom"):
            env.run()

    def test_callback_after_processing_runs_immediately(self):
        env = Environment()
        ev = env.event()
        ev.succeed("x")
        env.run()
        seen = []
        ev.add_callback(lambda e: seen.append(e.value))
        assert seen == ["x"]


class TestTimeouts:
    def test_clock_advances(self):
        env = Environment()
        env.timeout(5.0)
        env.run()
        assert env.now == 5.0

    def test_ordering(self):
        env = Environment()
        order = []
        env.timeout(3.0).add_callback(lambda e: order.append("b"))
        env.timeout(1.0).add_callback(lambda e: order.append("a"))
        env.run()
        assert order == ["a", "b"]

    def test_fifo_for_simultaneous_events(self):
        env = Environment()
        order = []
        env.timeout(1.0).add_callback(lambda e: order.append(1))
        env.timeout(1.0).add_callback(lambda e: order.append(2))
        env.run()
        assert order == [1, 2]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Environment().timeout(-1.0)


class TestProcesses:
    def test_sequential_timeouts(self):
        env = Environment()
        trace = []

        def proc():
            yield env.timeout(2.0)
            trace.append(env.now)
            yield env.timeout(3.0)
            trace.append(env.now)
            return "done"

        p = env.process(proc())
        result = env.run(p)
        assert trace == [2.0, 5.0]
        assert result == "done"

    def test_process_waits_on_event(self):
        env = Environment()
        gate = env.event()
        arrived = []

        def waiter():
            value = yield gate
            arrived.append((env.now, value))

        def opener():
            yield env.timeout(4.0)
            gate.succeed("open")

        env.process(waiter())
        env.process(opener())
        env.run()
        assert arrived == [(4.0, "open")]

    def test_exception_propagates_into_process(self):
        env = Environment()
        gate = env.event()
        caught = []

        def waiter():
            try:
                yield gate
            except RuntimeError as exc:
                caught.append(str(exc))

        env.process(waiter())
        gate.fail(RuntimeError("bad"))
        env.run()
        assert caught == ["bad"]

    def test_uncaught_process_exception_fails_its_event(self):
        env = Environment()

        def boom():
            yield env.timeout(1.0)
            raise ValueError("explode")

        p = env.process(boom())
        with pytest.raises(ValueError, match="explode"):
            env.run(p)

    def test_yielding_non_event_is_an_error(self):
        env = Environment()

        def bad():
            yield 42

        p = env.process(bad())
        with pytest.raises(SimulationError):
            env.run(p)

    def test_yielding_already_processed_event_continues_immediately(self):
        env = Environment()
        done = env.event()
        done.succeed("v")
        env.run()
        got = []

        def proc():
            value = yield done
            got.append((env.now, value))

        env.process(proc())
        env.run()
        assert got == [(0.0, "v")]

    def test_non_generator_rejected(self):
        with pytest.raises(SimulationError):
            Environment().process(lambda: None)  # type: ignore[arg-type]


class TestConditions:
    def test_all_of_values_in_order(self):
        env = Environment()
        t1 = env.timeout(1.0, "a")
        t2 = env.timeout(2.0, "b")
        cond = AllOf(env, [t1, t2])
        assert env.run(cond) == ["a", "b"]
        assert env.now == 2.0

    def test_all_of_empty(self):
        env = Environment()
        assert env.run(env.all_of([])) == []

    def test_any_of_returns_winner(self):
        env = Environment()
        slow = env.timeout(5.0, "slow")
        fast = env.timeout(1.0, "fast")
        index, value = env.run(AnyOf(env, [slow, fast]))
        assert (index, value) == (1, "fast")
        assert env.now == 1.0

    def test_all_of_fails_fast(self):
        env = Environment()
        bad = env.event()
        cond = env.all_of([env.timeout(10.0), bad])
        bad.fail(RuntimeError("nope"))
        with pytest.raises(RuntimeError):
            env.run(cond)


class TestRunLoop:
    def test_run_until_time_lands_exactly(self):
        env = Environment()
        env.timeout(10.0)
        env.run(until=4.0)
        assert env.now == 4.0

    def test_run_until_past_is_error(self):
        env = Environment()
        env.timeout(5.0)
        env.run()
        with pytest.raises(SimulationError):
            env.run(until=1.0)

    def test_run_until_event_that_never_fires(self):
        env = Environment()
        ev = env.event()
        with pytest.raises(SimulationError):
            env.run(ev)

    def test_step_on_empty_queue(self):
        with pytest.raises(SimulationError):
            Environment().step()

    def test_initial_time(self):
        env = Environment(initial_time=100.0)
        env.timeout(5.0)
        env.run()
        assert env.now == 105.0
