"""Tests for DES resources: Resource, Store, Barrier."""

import pytest

from repro.des import Barrier, Environment, Resource, Store
from repro.util.errors import SimulationError


class TestResource:
    def test_capacity_respected(self):
        env = Environment()
        res = Resource(env, capacity=2)
        trace = []

        def worker(name, hold):
            req = res.request()
            yield req
            trace.append((env.now, name, "start"))
            yield env.timeout(hold)
            res.release()
            trace.append((env.now, name, "end"))

        for i, hold in enumerate([3.0, 3.0, 3.0]):
            env.process(worker(i, hold))
        env.run()
        starts = {name: t for t, name, kind in trace if kind == "start"}
        assert starts[0] == 0.0 and starts[1] == 0.0
        assert starts[2] == 3.0  # third waits for a slot

    def test_fifo_order(self):
        env = Environment()
        res = Resource(env, capacity=1)
        order = []

        def worker(name):
            yield res.request()
            order.append(name)
            yield env.timeout(1.0)
            res.release()

        for name in "abc":
            env.process(worker(name))
        env.run()
        assert order == ["a", "b", "c"]

    def test_release_without_hold_raises(self):
        env = Environment()
        with pytest.raises(SimulationError):
            Resource(env).release()

    def test_counters(self):
        env = Environment()
        res = Resource(env, capacity=1)
        res.request()
        res.request()
        assert res.in_use == 1
        assert res.queued == 1

    def test_invalid_capacity(self):
        with pytest.raises(SimulationError):
            Resource(Environment(), capacity=0)


class TestStore:
    def test_put_then_get(self):
        env = Environment()
        store = Store(env)
        store.put("x")
        ev = store.get()
        env.run()
        assert ev.value == "x"

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)
        got = []

        def consumer():
            item = yield store.get()
            got.append((env.now, item))

        def producer():
            yield env.timeout(2.0)
            store.put("late")

        env.process(consumer())
        env.process(producer())
        env.run()
        assert got == [(2.0, "late")]

    def test_fifo_items_and_getters(self):
        env = Environment()
        store = Store(env)
        store.put(1)
        store.put(2)
        a, b = store.get(), store.get()
        env.run()
        assert (a.value, b.value) == (1, 2)
        assert len(store) == 0


class TestBarrier:
    def test_releases_when_full(self):
        env = Environment()
        barrier = Barrier(env, parties=3)
        times = []

        def party(delay):
            yield env.timeout(delay)
            gen = yield barrier.wait()
            times.append((env.now, gen))

        for d in (1.0, 5.0, 3.0):
            env.process(party(d))
        env.run()
        assert times == [(5.0, 0)] * 3  # all released at the latest arrival

    def test_cyclic_generations(self):
        env = Environment()
        barrier = Barrier(env, parties=2)
        gens = []

        def party():
            for _ in range(3):
                gen = yield barrier.wait()
                gens.append(gen)
                yield env.timeout(1.0)

        env.process(party())
        env.process(party())
        env.run()
        assert sorted(gens) == [0, 0, 1, 1, 2, 2]

    def test_single_party_never_blocks(self):
        env = Environment()
        barrier = Barrier(env, parties=1)
        ev = barrier.wait()
        env.run()
        assert ev.value == 0

    def test_invalid_parties(self):
        with pytest.raises(SimulationError):
            Barrier(Environment(), parties=0)
