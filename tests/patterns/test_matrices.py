"""Tests for the traffic-matrix generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.patterns.matrices import (
    hotspot_matrix,
    permutation_matrix,
    sparse_matrix,
    uniform_matrix,
    zipf_matrix,
)
from repro.util.errors import ConfigError


class TestUniform:
    def test_shape_and_range(self):
        m = uniform_matrix(0, 3, 5, 2.0, 4.0)
        assert m.shape == (3, 5)
        assert (m >= 2.0).all() and (m <= 4.0).all()

    def test_seeded(self):
        assert np.array_equal(uniform_matrix(1, 4, 4, 0, 1),
                              uniform_matrix(1, 4, 4, 0, 1))

    def test_invalid(self):
        with pytest.raises(ConfigError):
            uniform_matrix(0, 0, 3, 1, 2)
        with pytest.raises(ConfigError):
            uniform_matrix(0, 2, 2, 5, 1)


class TestZipf:
    def test_total_preserved(self):
        m = zipf_matrix(0, 6, 4, total=100.0)
        assert m.sum() == pytest.approx(100.0)
        assert (m >= 0).all()

    def test_skewed(self):
        m = zipf_matrix(0, 8, 8, total=100.0, exponent=1.5)
        flat = np.sort(m.ravel())[::-1]
        # Top 10% of pairs carry a disproportionate share.
        top = flat[: max(1, len(flat) // 10)].sum()
        assert top > 100.0 / 10

    def test_invalid(self):
        with pytest.raises(ConfigError):
            zipf_matrix(0, 2, 2, total=-1)
        with pytest.raises(ConfigError):
            zipf_matrix(0, 2, 2, total=1, exponent=0)


class TestSparse:
    @given(st.integers(0, 100), st.sampled_from([0.1, 0.5, 0.9]))
    @settings(max_examples=30)
    def test_density_and_nonempty(self, seed, density):
        m = sparse_matrix(seed, 6, 6, density, 1.0, 2.0)
        assert (m > 0).any()
        nz = m[m > 0]
        assert (nz >= 1.0).all() and (nz <= 2.0).all()

    def test_invalid_density(self):
        with pytest.raises(ConfigError):
            sparse_matrix(0, 2, 2, 0.0, 1, 2)
        with pytest.raises(ConfigError):
            sparse_matrix(0, 2, 2, 1.5, 1, 2)


class TestPermutation:
    def test_one_per_row_and_column(self):
        m = permutation_matrix(0, 5, volume=3.0)
        assert ((m > 0).sum(axis=0) == 1).all()
        assert ((m > 0).sum(axis=1) == 1).all()
        assert m[m > 0].sum() == pytest.approx(15.0)

    def test_invalid_volume(self):
        with pytest.raises(ConfigError):
            permutation_matrix(0, 3, volume=0)


class TestHotspot:
    def test_hot_columns(self):
        m = hotspot_matrix(0, 4, 6, background=1.0, hotspot=10.0, num_hot=2)
        col_totals = m.sum(axis=0)
        assert (col_totals == 40.0).sum() == 2  # 4 rows x 10
        assert (col_totals == 4.0).sum() == 4

    def test_zero_hot(self):
        m = hotspot_matrix(0, 3, 3, background=2.0, hotspot=5.0, num_hot=0)
        assert (m == 2.0).all()

    def test_invalid(self):
        with pytest.raises(ConfigError):
            hotspot_matrix(0, 2, 2, background=5.0, hotspot=1.0)
        with pytest.raises(ConfigError):
            hotspot_matrix(0, 2, 2, background=1.0, hotspot=2.0, num_hot=5)
