"""Tests for the collective-operation patterns and their scheduling."""

import numpy as np
import pytest

from repro.core.bounds import lower_bound, lower_bound_report
from repro.core.oggp import oggp
from repro.graph.generators import from_traffic_matrix
from repro.patterns.collectives import (
    alltoall_matrix,
    alltoallv_matrix,
    gather_matrix,
    scatter_matrix,
    transpose_matrix,
)
from repro.util.errors import ConfigError


class TestGenerators:
    def test_alltoall(self):
        m = alltoall_matrix(3, 4, 2.5)
        assert m.shape == (3, 4)
        assert (m == 2.5).all()

    def test_alltoallv_validates(self):
        m = alltoallv_matrix([[1.0, 0.0], [2.0, 3.0]])
        assert m.sum() == 6.0
        with pytest.raises(ConfigError):
            alltoallv_matrix([1.0, 2.0])
        with pytest.raises(ConfigError):
            alltoallv_matrix([[-1.0]])

    def test_gather(self):
        m = gather_matrix(4, 3, root=1, volume=5.0)
        assert m[:, 1].sum() == 20.0
        assert m.sum() == 20.0
        with pytest.raises(ConfigError):
            gather_matrix(4, 3, root=3, volume=5.0)

    def test_scatter(self):
        m = scatter_matrix(3, 4, root=0, volume=2.0)
        assert m[0].sum() == 8.0
        assert m.sum() == 8.0

    def test_transpose_is_permutation(self):
        m = transpose_matrix(2, 3, tile_volume=7.0)
        assert m.shape == (6, 6)
        assert ((m > 0).sum(axis=1) == 1).all()
        assert ((m > 0).sum(axis=0) == 1).all()
        # tile (r,c) at rank r*q+c goes to rank c*p+r
        assert m[0 * 3 + 1, 1 * 2 + 0] == 7.0

    def test_square_transpose_diagonal_stays(self):
        m = transpose_matrix(2, 2, 1.0)
        assert m[0, 0] == 1.0  # (0,0) tile stays on rank 0
        assert m[3, 3] == 1.0


class TestSchedulingBehaviour:
    def test_gather_is_receiver_bound(self):
        """All traffic converges on the root: W(G) dominates the bound
        and no scheduler can parallelise anything."""
        m = gather_matrix(6, 6, root=2, volume=10.0)
        g = from_traffic_matrix(m)
        report = lower_bound_report(g, k=6, beta=1.0)
        assert report.eta_c == pytest.approx(60.0)  # root drains serially
        s = oggp(g, k=6, beta=1.0)
        s.validate(g)
        assert s.max_step_size == 1  # 1-port at the root
        assert s.cost == pytest.approx(lower_bound(g, 6, 1.0))

    def test_transpose_is_one_step_when_k_allows(self):
        m = transpose_matrix(2, 2, 4.0)
        g = from_traffic_matrix(m)
        s = oggp(g, k=4, beta=1.0)
        s.validate(g)
        assert s.num_steps == 1
        assert s.cost == pytest.approx(5.0)

    def test_alltoall_near_bound(self):
        m = alltoall_matrix(6, 6, 3.0)
        g = from_traffic_matrix(m)
        bound = lower_bound(g, 3, 1.0)
        s = oggp(g, k=3, beta=1.0)
        s.validate(g)
        assert s.cost <= 1.3 * bound

    def test_scatter_matches_gather_by_symmetry(self):
        gather = from_traffic_matrix(gather_matrix(5, 5, 0, 4.0))
        scatter = from_traffic_matrix(scatter_matrix(5, 5, 0, 4.0))
        cost_g = oggp(gather, k=5, beta=0.5).cost
        cost_s = oggp(scatter, k=5, beta=0.5).cost
        assert cost_g == pytest.approx(cost_s)
