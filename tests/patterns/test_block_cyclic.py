"""Tests for block-cyclic redistribution patterns."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.oggp import oggp
from repro.patterns.block_cyclic import block_cyclic_graph, block_cyclic_matrix
from repro.util.errors import ConfigError


class TestMatrix:
    def test_elements_conserved(self):
        m = block_cyclic_matrix(1000, 4, 8, 6, 5)
        assert m.sum() == pytest.approx(1000.0)

    def test_identity_relayout_is_diagonal(self):
        m = block_cyclic_matrix(96, 4, 8, 4, 8)
        assert np.allclose(m, np.diag(np.diag(m)))
        assert np.trace(m) == pytest.approx(96.0)

    def test_known_small_case(self):
        # 8 elements, block 2 over 2 procs -> owners 0,0,1,1,0,0,1,1.
        # Target: block 1 over 4 procs -> owners 0,1,2,3,0,1,2,3.
        m = block_cyclic_matrix(8, 2, 2, 4, 1)
        expected = np.array(
            [
                [2.0, 2.0, 0.0, 0.0],
                [0.0, 0.0, 2.0, 2.0],
            ]
        )
        assert np.allclose(m, expected)

    def test_element_size_scales(self):
        base = block_cyclic_matrix(100, 3, 4, 5, 2)
        scaled = block_cyclic_matrix(100, 3, 4, 5, 2, element_size=2.5)
        assert np.allclose(scaled, base * 2.5)

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            block_cyclic_matrix(0, 2, 2, 2, 2)
        with pytest.raises(ConfigError):
            block_cyclic_matrix(10, 0, 2, 2, 2)
        with pytest.raises(ConfigError):
            block_cyclic_matrix(10, 2, 2, 2, 2, element_size=0)

    @given(
        st.integers(1, 500),
        st.integers(1, 5), st.integers(1, 5),
        st.integers(1, 5), st.integers(1, 5),
    )
    @settings(max_examples=60)
    def test_conservation_property(self, n, p1, b1, p2, b2):
        m = block_cyclic_matrix(n, p1, b1, p2, b2)
        assert m.shape == (p1, p2)
        assert m.sum() == pytest.approx(float(n))
        # Row i owns exactly the elements the source layout gives it.
        idx = np.arange(n)
        src_counts = np.bincount((idx // b1) % p1, minlength=p1)
        assert np.allclose(m.sum(axis=1), src_counts)


class TestGraph:
    def test_graph_is_schedulable(self):
        g = block_cyclic_graph(960, 4, 16, 6, 8)
        s = oggp(g, k=min(4, 6), beta=1.0)
        s.validate(g)

    def test_speed_applied(self):
        g1 = block_cyclic_graph(100, 2, 4, 3, 2, speed=1.0)
        g2 = block_cyclic_graph(100, 2, 4, 3, 2, speed=2.0)
        assert g2.total_weight() == pytest.approx(g1.total_weight() / 2)
