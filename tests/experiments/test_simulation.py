"""Tests for the shared simulation machinery (Figs 7–9)."""

import pytest

from repro.experiments.simulation import (
    RatioPoint,
    SimulationConfig,
    measure_ratios,
)
from repro.util.errors import ConfigError

TINY = SimulationConfig(max_side=5, max_edges=10, draws=25)


class TestConfig:
    def test_defaults_match_paper_instance_sizes(self):
        c = SimulationConfig()
        assert c.max_side == 20    # up to 40 nodes total
        assert c.max_edges == 400
        assert (c.weight_low, c.weight_high) == (1, 20)

    def test_validation(self):
        with pytest.raises(ConfigError):
            SimulationConfig(draws=0)
        with pytest.raises(ConfigError):
            SimulationConfig(weight_low=5, weight_high=2)
        with pytest.raises(ConfigError):
            SimulationConfig(max_side=0)


class TestMeasureRatios:
    def test_ratios_respect_guarantee(self):
        point = measure_ratios(TINY, k=3, beta=1.0, point_index=0)
        for stats in (point.ggp, point.oggp):
            assert stats.count == TINY.draws
            assert 1.0 <= stats.min
            assert stats.max <= 2.0 + 1e-9

    def test_oggp_no_worse_on_average(self):
        point = measure_ratios(TINY, k=4, beta=1.0, point_index=1)
        assert point.oggp.mean <= point.ggp.mean + 1e-9

    def test_k1_is_optimal(self):
        point = measure_ratios(TINY, k=1, beta=1.0, point_index=2)
        assert point.ggp.max == pytest.approx(1.0)
        assert point.oggp.max == pytest.approx(1.0)

    def test_random_k_mode(self):
        point = measure_ratios(TINY, k=None, beta=2.0, point_index=3)
        assert isinstance(point, RatioPoint)
        assert point.param == 2.0  # param is beta when k is random

    def test_deterministic_given_config(self):
        a = measure_ratios(TINY, k=3, beta=1.0, point_index=7)
        b = measure_ratios(TINY, k=3, beta=1.0, point_index=7)
        assert a.ggp == b.ggp and a.oggp == b.oggp

    def test_point_index_changes_draws(self):
        a = measure_ratios(TINY, k=3, beta=1.0, point_index=1)
        b = measure_ratios(TINY, k=3, beta=1.0, point_index=2)
        assert a.ggp != b.ggp

    def test_parallel_equals_serial(self):
        serial = measure_ratios(TINY, k=3, beta=1.0, point_index=4)
        parallel = measure_ratios(
            TINY, k=3, beta=1.0, point_index=4, processes=3
        )
        assert serial.ggp == parallel.ggp
        assert serial.oggp == parallel.oggp
