"""Tests for the estimator-convergence experiment."""

from repro.experiments.convergence import run_convergence


class TestConvergence:
    def test_structure(self):
        res = run_convergence(draw_counts=(10, 20), repetitions=3)
        assert res.experiment_id == "convergence"
        assert [r[0] for r in res.rows] == [10, 20]
        for _draws, avg_mean, avg_spread, max_mean, max_spread in res.rows:
            assert 1.0 <= avg_mean <= 2.0
            assert avg_spread >= 0.0
            assert avg_mean <= max_mean <= 2.0

    def test_estimates_are_consistent_across_draw_counts(self):
        res = run_convergence(draw_counts=(10, 40), repetitions=3)
        small, large = res.rows[0], res.rows[1]
        # The avg estimator targets the same quantity at any draw count.
        assert abs(small[1] - large[1]) < 0.1
