"""Tests for the ablation harnesses."""

from repro.experiments.ablation import (
    AblationConfig,
    run_ablation_matching,
    run_ablation_rounding,
    run_ablation_steps,
)
from repro.experiments.simulation import SimulationConfig

TINY = AblationConfig(
    sim=SimulationConfig(max_side=5, max_edges=15, draws=20), k=3, beta=1.0
)


class TestMatchingAblation:
    def test_all_schedulers_reported(self):
        res = run_ablation_matching(TINY)
        names = {row[0] for row in res.rows}
        assert names == {
            "ggp_arbitrary", "ggp_hungarian", "oggp", "greedy", "list",
            "stepmin",
        }

    def test_peeling_family_carries_guarantee(self):
        res = run_ablation_matching(TINY)
        by_name = {row[0]: row for row in res.rows}
        for name in ("ggp_arbitrary", "ggp_hungarian", "oggp"):
            assert by_name[name][2] <= 2.0 + 1e-9  # ratio_max

    def test_oggp_at_least_as_good_as_arbitrary(self):
        res = run_ablation_matching(TINY)
        by_name = {row[0]: row for row in res.rows}
        assert by_name["oggp"][1] <= by_name["ggp_arbitrary"][1] + 1e-9


class TestRoundingAblation:
    def test_rows_per_beta(self):
        res = run_ablation_rounding(TINY)
        assert len(res.rows) == 5
        assert set(res.series) == {"round-up", "no round-up"}

    def test_roundup_wins_for_large_beta(self):
        res = run_ablation_rounding(TINY)
        last = res.rows[-1]  # largest beta
        roundup_avg, raw_avg = last[1], last[3]
        assert roundup_avg <= raw_avg + 1e-9


class TestStepsAblation:
    def test_reports_step_metrics(self):
        res = run_ablation_steps(TINY)
        names = [row[0] for row in res.rows]
        assert "ggp_arbitrary" in names
        assert "oggp" in names
        assert "oggp_vs_arbitrary_reduction_pct" in names

    def test_oggp_uses_fewer_steps_on_average(self):
        res = run_ablation_steps(TINY)
        by_name = {row[0]: row for row in res.rows}
        assert by_name["oggp"][1] <= by_name["ggp_arbitrary"][1] + 1e-9
