"""Reduced-size runs of the future-work extension experiments."""

from repro.experiments.extensions import (
    run_ablation_relax,
    run_dynamic_backbone,
    run_online_batching,
    run_preredistribution,
)
from repro.experiments.simulation import SimulationConfig


class TestDynamicBackbone:
    def test_regimes_and_shape(self):
        res = run_dynamic_backbone(num_patterns=3)
        regimes = [row[0] for row in res.rows]
        assert regimes == ["ideal-fluid", "mild", "severe"]
        by = {row[0]: row for row in res.rows}
        # Control: under ideal fluid sharing adapting cannot win.
        assert by["ideal-fluid"][4] <= 1.0
        # With congestion costs, adapting wins on average.
        assert by["mild"][4] > 0.0

    def test_rescheduling_happens(self):
        res = run_dynamic_backbone(num_patterns=2)
        for row in res.rows:
            assert row[3] > 1  # reschedules_avg


class TestOnlineBatching:
    def test_ratios_above_one_and_bounded(self):
        res = run_online_batching(num_workloads=3, messages=20)
        for _label, _rate, avg, worst, rounds in res.rows:
            assert 1.0 <= avg <= worst < 3.0
            assert rounds >= 1

    def test_sparse_needs_more_rounds_than_bursty(self):
        res = run_online_batching(num_workloads=3, messages=20)
        by = {row[0]: row for row in res.rows}
        assert by["sparse"][4] > by["bursty"][4]


class TestPreredistribution:
    def test_skewed_patterns_gain_uniform_does_not(self):
        res = run_preredistribution(num_patterns=4)
        by = {row[0]: row for row in res.rows}
        assert by["hotspot"][3] > 10.0   # big average gain
        assert by["zipf"][3] > 5.0
        assert abs(by["uniform"][3]) < 5.0  # nothing to dispatch


class TestAblationRelax:
    def test_never_hurts_at_beta_zero(self):
        cfg = SimulationConfig(max_side=6, max_edges=20, draws=25)
        res = run_ablation_relax(cfg)
        by_beta = {row[0]: row for row in res.rows}
        assert by_beta[0.0][3] <= 1.0 + 1e-9  # ratio_max
        # Larger betas: relaxation helps on average (ratio < 1) or ties.
        assert by_beta[16.0][1] <= 1.0 + 1e-9
