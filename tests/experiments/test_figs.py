"""Reduced-size runs of every figure harness, checking paper shapes."""

import pytest

from repro.experiments.fig7 import run_fig7
from repro.experiments.fig8 import run_fig8
from repro.experiments.fig9 import run_fig9
from repro.experiments.fig10_11 import (
    TestbedConfig,
    run_fig10,
    run_fig11,
    run_testbed_comparison,
)
from repro.experiments.simulation import SimulationConfig
from repro.netsim.tcp import TcpParams
from repro.util.errors import ConfigError

TINY = SimulationConfig(max_side=6, max_edges=20, draws=30)


class TestFig7:
    def test_structure_and_shape(self):
        res = run_fig7(TINY, k_values=(1, 3, 6))
        assert res.experiment_id == "fig7"
        assert len(res.rows) == 3
        assert set(res.series) == {"ggp avg", "ggp max", "oggp avg", "oggp max"}
        for _k, g_avg, g_max, o_avg, o_max in res.rows:
            assert 1.0 <= g_avg <= g_max <= 2.0 + 1e-9
            assert 1.0 <= o_avg <= o_max <= 2.0 + 1e-9
            assert o_avg <= g_avg + 1e-9  # OGGP better on average

    def test_render_produces_plot(self):
        res = run_fig7(TINY, k_values=(1, 2))
        out = res.render()
        assert "fig7" in out and "oggp avg" in out


class TestFig8:
    def test_large_weights_near_optimal(self):
        res = run_fig8(TINY, k_values=(2, 5))
        for _k, g_avg, g_max, o_avg, o_max in res.rows:
            # Paper: worst ratio 1.00016 with beta=1 and weights <= 10000.
            assert g_max < 1.01
            assert o_max < 1.01


class TestFig9:
    def test_beta_sweep_shape(self):
        res = run_fig9(TINY, beta_values=(0.25, 2.0, 64.0))
        assert [r[0] for r in res.rows] == [0.25, 2.0, 64.0]
        # Ratios drop for beta far above the weights (paper's finding).
        assert res.rows[-1][1] < res.rows[1][1] + 0.2
        for row in res.rows:
            assert all(v <= 2.0 + 1e-9 for v in row[1:])


class TestFig10And11:
    QUICK = dict(
        n_values=(12,),
        tcp_repeats=2,
        size_scale=0.08,
        tcp_params=TcpParams(dt=0.005),
    )

    def test_fig10_rows(self):
        res = run_fig10(TestbedConfig(k=3, **self.QUICK))
        assert res.experiment_id == "fig10"
        (row,) = res.rows
        n, brute, spread, ggp_t, ggp_steps, oggp_t, oggp_steps, g1, g2 = row
        assert n == 12
        assert brute > 0 and ggp_t > 0 and oggp_t > 0
        assert oggp_steps <= ggp_steps

    def test_fig11_beats_brute(self):
        res = run_fig11(TestbedConfig(k=7, **self.QUICK))
        (row,) = res.rows
        gain_ggp, gain_oggp = row[-2], row[-1]
        assert gain_ggp > 0 and gain_oggp > 0

    def test_wrong_k_rejected(self):
        with pytest.raises(ConfigError):
            run_fig10(TestbedConfig(k=7))
        with pytest.raises(ConfigError):
            run_fig11(TestbedConfig(k=3))

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            TestbedConfig(k=0)
        with pytest.raises(ConfigError):
            TestbedConfig(k=3, tcp_repeats=0)
        with pytest.raises(ConfigError):
            TestbedConfig(k=3, size_scale=0)
        with pytest.raises(ConfigError):
            TestbedConfig(k=3, n_values=(5,))

    def test_generic_comparison_other_k(self):
        res = run_testbed_comparison(TestbedConfig(k=5, **self.QUICK))
        assert res.experiment_id == "fig11"  # non-3 maps to the k!=3 id
