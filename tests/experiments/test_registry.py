"""Tests for the experiment registry and the result container."""

import pytest

from repro.experiments.base import ExperimentResult
from repro.experiments.registry import EXPERIMENTS, get_experiment
from repro.util.errors import ConfigError


class TestRegistry:
    def test_all_paper_figures_registered(self):
        for name in ("fig7", "fig8", "fig9", "fig10", "fig11"):
            assert name in EXPERIMENTS

    def test_ablations_registered(self):
        assert "ablation_matching" in EXPERIMENTS
        assert "ablation_rounding" in EXPERIMENTS
        assert "ablation_steps" in EXPERIMENTS

    def test_lookup(self):
        assert get_experiment("fig7") is EXPERIMENTS["fig7"]

    def test_unknown_raises_with_suggestions(self):
        with pytest.raises(ConfigError, match="fig7"):
            get_experiment("nope")


class TestExperimentResult:
    def make(self) -> ExperimentResult:
        return ExperimentResult(
            experiment_id="x",
            title="T",
            headers=("a", "b"),
            rows=[(1, 2.0), (3, 4.0)],
            x=[1.0, 3.0],
            series={"s": [2.0, 4.0]},
            notes="n",
        )

    def test_table_and_markdown(self):
        res = self.make()
        assert "a" in res.table()
        assert res.markdown().startswith("| a | b |")

    def test_plot(self):
        assert "s" in self.make().plot()

    def test_plot_empty_when_no_series(self):
        res = ExperimentResult("x", "T", ("a",), [(1,)])
        assert res.plot() == ""

    def test_render_includes_notes(self):
        assert "notes: n" in self.make().render()

    def test_save_csv(self, tmp_path):
        path = tmp_path / "r.csv"
        self.make().save_csv(path)
        assert path.read_text().splitlines()[0] == "a,b"
