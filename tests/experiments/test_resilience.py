"""The recovery_overhead experiment and its registry wiring."""

import pytest

from repro.experiments.registry import EXPERIMENTS, get_experiment, run_experiment
from repro.experiments.resilience import run_recovery_overhead
from repro.resilience import FaultSpec
from repro.util.errors import ConfigError


class TestRegistryWiring:
    def test_registered(self):
        assert "recovery_overhead" in EXPERIMENTS
        assert get_experiment("recovery_overhead") is run_recovery_overhead

    def test_run_experiment_forwards_resilience_kwargs(self):
        result = run_experiment(
            "recovery_overhead",
            fault_rates=(0.0, 0.2),
            num_patterns=2,
            retries=6,
        )
        assert result.experiment_id == "recovery_overhead"

    def test_run_experiment_rejects_unsupported_kwargs(self):
        with pytest.raises(ConfigError, match="does not support --retries"):
            run_experiment("fig7", retries=3)


class TestRecoveryOverhead:
    def _small(self, **kwargs):
        return run_recovery_overhead(
            fault_rates=(0.0, 0.2), num_patterns=2, **kwargs
        )

    def test_zero_rate_has_zero_overhead(self):
        result = self._small()
        by_rate = {row[0]: row for row in result.rows}
        assert by_rate[0.0][3] == pytest.approx(0.0)  # overhead %
        assert by_rate[0.0][4] == 0.0  # recovery rounds

    def test_faults_cost_time_but_deliver_everything(self):
        result = self._small()
        by_rate = {row[0]: row for row in result.rows}
        rate, time_s, base_s, overhead, rounds, _steps, undelivered = by_rate[0.2]
        assert overhead > 0.0
        assert rounds > 0.0
        assert undelivered == 0.0
        assert time_s > base_s

    def test_reproducible(self):
        assert self._small().rows == self._small().rows

    def test_template_spec_and_retries_accepted(self):
        result = self._small(
            faults=FaultSpec(seed=5, transfer_stall_rate=0.05), retries=6
        )
        assert result.series["overhead %"]

    def test_bad_num_patterns_rejected(self):
        with pytest.raises(ConfigError, match="num_patterns"):
            run_recovery_overhead(num_patterns=0)

    def test_renders(self):
        result = self._small()
        rendered = result.render()
        assert "Recovery overhead" in rendered
        assert "overhead %" in rendered
