"""Tests for the empirical-complexity experiment."""

from repro.experiments.scalability import _fit_slope, run_scalability


class TestFitSlope:
    def test_linear_relation(self):
        sizes = [10.0, 20.0, 40.0]
        times = [1.0, 2.0, 4.0]  # slope 1
        assert abs(_fit_slope(sizes, times) - 1.0) < 1e-9

    def test_quadratic_relation(self):
        sizes = [10.0, 20.0, 40.0]
        times = [1.0, 4.0, 16.0]  # slope 2
        assert abs(_fit_slope(sizes, times) - 2.0) < 1e-9


class TestScalability:
    def test_structure_and_polynomial_growth(self):
        res = run_scalability(edge_counts=(30, 60, 120), repeats=3)
        assert res.experiment_id == "scalability"
        data_rows = res.rows[:-1]
        assert [r[0] for r in data_rows] == [30, 60, 120]
        for row in data_rows:
            assert all(t > 0 for t in row[1:])
        slope_row = res.rows[-1]
        assert slope_row[0] == "log-log slope"
        # Small polynomial exponents, far from the superpolynomial blowup
        # that would indicate a broken peeling loop.
        for slope in slope_row[1:]:
            assert 0.0 < slope < 3.5
