"""Unit and property tests for the bipartite multigraph."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.bipartite import BipartiteGraph, Edge, EdgeKind, NodeKind
from repro.util.errors import GraphError
from tests.conftest import bipartite_graphs


class TestConstruction:
    def test_empty_graph(self):
        g = BipartiteGraph()
        assert g.num_edges == 0
        assert g.num_left == 0
        assert g.num_right == 0
        assert g.is_empty()
        assert g.total_weight() == 0
        assert g.max_node_weight() == 0
        assert g.max_degree() == 0

    def test_from_edges(self):
        g = BipartiteGraph.from_edges([(0, 0, 4.0), (0, 1, 2.0), (1, 1, 3.0)])
        assert g.num_edges == 3
        assert g.num_left == 2
        assert g.num_right == 2
        assert g.total_weight() == 9.0

    def test_add_edge_returns_edge_with_unique_ids(self):
        g = BipartiteGraph()
        e1 = g.add_edge(0, 0, 1)
        e2 = g.add_edge(0, 0, 2)  # parallel edge allowed
        assert e1.id != e2.id
        assert g.num_edges == 2
        assert g.node_weight(0, "left") == 3

    def test_zero_weight_rejected(self):
        g = BipartiteGraph()
        with pytest.raises(GraphError):
            g.add_edge(0, 0, 0)

    def test_negative_weight_rejected(self):
        g = BipartiteGraph()
        with pytest.raises(GraphError):
            g.add_edge(0, 0, -1.5)

    def test_left_right_namespaces_are_independent(self):
        g = BipartiteGraph.from_edges([(0, 0, 1)])
        assert g.num_left == 1
        assert g.num_right == 1
        assert g.degree(0, "left") == 1
        assert g.degree(0, "right") == 1

    def test_isolated_nodes(self):
        g = BipartiteGraph()
        g.add_left_node(5)
        g.add_right_node(7)
        assert g.num_left == 1
        assert g.num_right == 1
        assert g.is_empty()
        assert g.node_weight(5, "left") == 0

    def test_node_kinds(self):
        g = BipartiteGraph()
        g.add_left_node(0, NodeKind.FILLER)
        g.add_right_node(1, NodeKind.PADDING)
        assert g.left_node_kind(0) is NodeKind.FILLER
        assert g.right_node_kind(1) is NodeKind.PADDING
        # add_left_node is idempotent and keeps the original kind
        g.add_left_node(0, NodeKind.ORIGINAL)
        assert g.left_node_kind(0) is NodeKind.FILLER


class TestAggregates:
    def test_paper_notations(self, small_graph):
        # edges: (0,0,4),(0,1,2),(1,1,3),(2,0,1),(2,2,5)
        assert small_graph.total_weight() == 15  # P(G)
        assert small_graph.max_node_weight() == 6  # w(left 0 or left 2) = 6
        assert small_graph.max_degree() == 2
        assert small_graph.node_weight(0, "left") == 6
        assert small_graph.node_weight(1, "right") == 5
        assert small_graph.max_edge_weight() == 5
        assert small_graph.min_edge_weight() == 1

    def test_weight_regularity_detection(self):
        regular = BipartiteGraph.from_edges(
            [(0, 0, 2), (0, 1, 1), (1, 1, 2), (1, 0, 1)]
        )
        assert regular.is_weight_regular()
        irregular = BipartiteGraph.from_edges([(0, 0, 2), (1, 1, 1)])
        assert not irregular.is_weight_regular()

    def test_empty_graph_is_weight_regular(self):
        assert BipartiteGraph().is_weight_regular()


class TestMutation:
    def test_remove_edge_updates_aggregates(self, small_graph):
        edge = next(iter(small_graph.edges()))
        before = small_graph.total_weight()
        small_graph.remove_edge(edge.id)
        assert small_graph.total_weight() == before - edge.weight
        assert not small_graph.has_edge_id(edge.id)
        small_graph.validate()

    def test_remove_missing_edge_raises(self):
        with pytest.raises(GraphError):
            BipartiteGraph().remove_edge(0)

    def test_decrease_weight_partial(self):
        g = BipartiteGraph.from_edges([(0, 0, 5)])
        eid = g.edge_ids()[0]
        updated = g.decrease_weight(eid, 2)
        assert updated is not None
        assert updated.weight == 3
        assert g.total_weight() == 3
        g.validate()

    def test_decrease_weight_to_zero_removes(self):
        g = BipartiteGraph.from_edges([(0, 0, 5)])
        eid = g.edge_ids()[0]
        assert g.decrease_weight(eid, 5) is None
        assert g.is_empty()
        g.validate()

    def test_decrease_weight_overshoot_raises(self):
        g = BipartiteGraph.from_edges([(0, 0, 5)])
        with pytest.raises(GraphError):
            g.decrease_weight(g.edge_ids()[0], 6)

    def test_decrease_weight_nonpositive_raises(self):
        g = BipartiteGraph.from_edges([(0, 0, 5)])
        with pytest.raises(GraphError):
            g.decrease_weight(g.edge_ids()[0], 0)

    def test_remove_isolated_nodes(self):
        g = BipartiteGraph.from_edges([(0, 0, 1)])
        g.add_left_node(9)
        g.add_right_node(8)
        left_gone, right_gone = g.remove_isolated_nodes()
        assert left_gone == [9]
        assert right_gone == [8]
        assert g.num_left == 1
        assert g.num_right == 1

    def test_copy_is_independent(self, small_graph):
        clone = small_graph.copy()
        eid = clone.edge_ids()[0]
        clone.remove_edge(eid)
        assert small_graph.has_edge_id(eid)
        assert clone.num_edges == small_graph.num_edges - 1


class TestTransform:
    def test_map_weights_preserves_ids_and_kinds(self, small_graph):
        doubled = small_graph.map_weights(lambda w: w * 2)
        assert doubled.edge_ids() == small_graph.edge_ids()
        assert doubled.total_weight() == 2 * small_graph.total_weight()
        for eid in small_graph.edge_ids():
            assert doubled.edge(eid).kind == small_graph.edge(eid).kind

    def test_map_weights_rejects_nonpositive(self, small_graph):
        with pytest.raises(GraphError):
            small_graph.map_weights(lambda w: w - 10)


class TestSerialization:
    def test_roundtrip(self, small_graph):
        restored = BipartiteGraph.from_json(small_graph.to_json())
        assert restored == small_graph
        restored.validate()

    def test_roundtrip_preserves_kinds(self):
        g = BipartiteGraph()
        g.add_edge(0, 0, 3, kind=EdgeKind.FILLER,
                   left_kind=NodeKind.FILLER, right_kind=NodeKind.FILLER)
        restored = BipartiteGraph.from_json(g.to_json())
        edge = restored.edge(g.edge_ids()[0])
        assert edge.kind is EdgeKind.FILLER
        assert restored.left_node_kind(0) is NodeKind.FILLER

    def test_duplicate_edge_id_rejected(self):
        data = {
            "edges": [
                {"id": 0, "left": 0, "right": 0, "weight": 1},
                {"id": 0, "left": 1, "right": 1, "weight": 2},
            ]
        }
        with pytest.raises(GraphError):
            BipartiteGraph.from_dict(data)

    def test_new_edges_after_deserialization_get_fresh_ids(self, small_graph):
        restored = BipartiteGraph.from_json(small_graph.to_json())
        new = restored.add_edge(0, 0, 1)
        assert new.id not in small_graph.edge_ids()


class TestDunder:
    def test_len_and_repr(self, small_graph):
        assert len(small_graph) == 5
        assert "edges=5" in repr(small_graph)

    def test_equality_ignores_edge_ids(self):
        a = BipartiteGraph.from_edges([(0, 0, 1), (1, 1, 2)])
        b = BipartiteGraph.from_edges([(1, 1, 2), (0, 0, 1)])
        assert a == b

    def test_inequality_on_weights(self):
        a = BipartiteGraph.from_edges([(0, 0, 1)])
        b = BipartiteGraph.from_edges([(0, 0, 2)])
        assert a != b

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(BipartiteGraph())


class TestEdgeDataclass:
    def test_with_weight(self):
        e = Edge(0, 1, 2, 5.0)
        e2 = e.with_weight(3.0)
        assert e2.weight == 3.0
        assert (e2.id, e2.left, e2.right, e2.kind) == (0, 1, 2, EdgeKind.ORIGINAL)

    def test_endpoints(self):
        assert Edge(0, 1, 2, 5.0).endpoints == (1, 2)


class TestProperties:
    @given(bipartite_graphs())
    @settings(max_examples=60)
    def test_invariants_hold_after_construction(self, g):
        g.validate()
        assert g.total_weight() == pytest.approx(
            sum(e.weight for e in g.edges())
        )
        assert g.max_degree() >= 1
        assert g.num_left >= 1 and g.num_right >= 1

    @given(bipartite_graphs(), st.data())
    @settings(max_examples=60)
    def test_peel_sequence_preserves_invariants(self, g, data):
        # Randomly peel weights / remove edges; caches must stay exact.
        for _ in range(min(5, g.num_edges)):
            if g.is_empty():
                break
            ids = g.edge_ids()
            eid = data.draw(st.sampled_from(ids))
            edge = g.edge(eid)
            if edge.weight > 1 and data.draw(st.booleans()):
                g.decrease_weight(eid, 1)
            else:
                g.remove_edge(eid)
            g.validate()

    @given(bipartite_graphs())
    @settings(max_examples=40)
    def test_serialization_roundtrip(self, g):
        assert BipartiteGraph.from_json(g.to_json()) == g
