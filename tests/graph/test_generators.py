"""Tests for the graph generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.generators import (
    complete_bipartite,
    from_traffic_matrix,
    paper_figure2_graph,
    random_bipartite,
    random_weight_regular,
    to_traffic_matrix,
)
from repro.util.errors import GraphError


class TestRandomBipartite:
    def test_deterministic_given_seed(self):
        a = random_bipartite(123)
        b = random_bipartite(123)
        assert a == b

    def test_different_seeds_differ(self):
        assert random_bipartite(1) != random_bipartite(2)

    def test_respects_bounds(self):
        for seed in range(30):
            g = random_bipartite(seed, max_side=5, max_edges=9,
                                 weight_low=2, weight_high=4)
            assert g.num_left <= 5 and g.num_right <= 5
            assert 1 <= g.num_edges <= 9
            for e in g.edges():
                assert 2 <= e.weight <= 4
                assert isinstance(e.weight, int)

    def test_no_duplicate_pairs(self):
        for seed in range(20):
            g = random_bipartite(seed, max_side=4, max_edges=16)
            pairs = [(e.left, e.right) for e in g.edges()]
            assert len(set(pairs)) == len(pairs)

    def test_no_isolated_nodes(self):
        for seed in range(20):
            g = random_bipartite(seed, max_side=6, max_edges=6)
            for node in g.left_nodes():
                assert g.degree(node, "left") >= 1
            for node in g.right_nodes():
                assert g.degree(node, "right") >= 1

    def test_float_weights(self):
        g = random_bipartite(0, integer_weights=False,
                             weight_low=1, weight_high=2)
        assert all(isinstance(e.weight, float) for e in g.edges())

    def test_invalid_sides_raise(self):
        with pytest.raises(GraphError):
            random_bipartite(0, max_side=2, min_side=3)


class TestRandomWeightRegular:
    @given(st.integers(0, 1000), st.integers(1, 6), st.integers(1, 4))
    @settings(max_examples=40)
    def test_always_weight_regular(self, seed, n, layers):
        g = random_weight_regular(seed, n=n, layers=layers)
        assert g.is_weight_regular()
        assert g.num_left == g.num_right == n

    def test_unmerged_parallel_edges(self):
        g = random_weight_regular(7, n=3, layers=3, merge_parallel=False)
        assert g.num_edges == 9  # n * layers
        assert g.is_weight_regular()

    def test_invalid_params(self):
        with pytest.raises(GraphError):
            random_weight_regular(0, n=0)
        with pytest.raises(GraphError):
            random_weight_regular(0, n=2, layers=0)


class TestCompleteBipartite:
    def test_constant_weight(self):
        g = complete_bipartite(3, 4, weight=2)
        assert g.num_edges == 12
        assert g.total_weight() == 24
        assert g.is_weight_regular() is False  # 3 != 4 sides

    def test_callable_weight(self):
        g = complete_bipartite(2, 2, weight=lambda i, j: 1 + i + 2 * j)
        weights = sorted(e.weight for e in g.edges())
        assert weights == [1, 2, 3, 4]

    def test_square_uniform_is_regular(self):
        assert complete_bipartite(3, 3, weight=5).is_weight_regular()

    def test_invalid_sizes(self):
        with pytest.raises(GraphError):
            complete_bipartite(0, 3)


class TestTrafficMatrix:
    def test_zero_entries_make_no_edges(self):
        g = from_traffic_matrix([[0, 5], [3, 0]])
        assert g.num_edges == 2
        assert g.num_left == 2 and g.num_right == 2  # nodes materialised

    def test_speed_divides_weights(self):
        g = from_traffic_matrix([[10]], speed=4)
        assert next(iter(g.edges())).weight == 2.5

    def test_roundtrip(self):
        m = np.array([[0.0, 5.0], [3.0, 1.0]])
        assert np.allclose(to_traffic_matrix(from_traffic_matrix(m)), m)

    def test_roundtrip_with_speed(self):
        m = np.array([[8.0, 0.0]])
        g = from_traffic_matrix(m, speed=2)
        assert np.allclose(to_traffic_matrix(g, speed=2), m)

    def test_negative_entry_rejected(self):
        with pytest.raises(GraphError):
            from_traffic_matrix([[-1.0]])

    def test_wrong_ndim_rejected(self):
        with pytest.raises(GraphError):
            from_traffic_matrix([1.0, 2.0])

    def test_bad_speed_rejected(self):
        with pytest.raises(GraphError):
            from_traffic_matrix([[1.0]], speed=0)


class TestPaperFigure2:
    def test_shape_and_weights(self):
        g = paper_figure2_graph()
        assert g.num_left == 3 and g.num_right == 3
        assert g.num_edges == 5
        assert g.max_edge_weight() == 8
        assert g.total_weight() == 23
