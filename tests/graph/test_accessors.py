"""Tests for graph accessor methods not covered elsewhere."""

from repro.graph.bipartite import BipartiteGraph


class TestAccessors:
    def graph(self) -> BipartiteGraph:
        return BipartiteGraph.from_edges(
            [(0, 0, 4), (0, 1, 2), (1, 1, 3), (2, 0, 1)]
        )

    def test_left_edges(self):
        g = self.graph()
        edges = g.left_edges(0)
        assert {e.right for e in edges} == {0, 1}
        assert sum(e.weight for e in edges) == 6

    def test_right_edges(self):
        g = self.graph()
        edges = g.right_edges(0)
        assert {e.left for e in edges} == {0, 2}

    def test_edges_sorted_default_is_id_order(self):
        g = self.graph()
        ids = [e.id for e in g.edges_sorted()]
        assert ids == sorted(ids)

    def test_edges_sorted_with_key(self):
        g = self.graph()
        weights = [e.weight for e in g.edges_sorted(key=lambda e: e.weight)]
        assert weights == sorted(weights)

    def test_edge_lookup(self):
        g = self.graph()
        eid = g.edge_ids()[0]
        assert g.edge(eid).id == eid

    def test_node_lists_sorted(self):
        g = self.graph()
        assert g.left_nodes() == [0, 1, 2]
        assert g.right_nodes() == [0, 1]

    def test_num_nodes(self):
        assert self.graph().num_nodes == 5

    def test_original_edge_ids(self):
        g = self.graph()
        assert g.original_edge_ids() == set(g.edge_ids())

    def test_iter_edge_data_matches_edge_views(self):
        g = self.graph()
        flat = {eid: (l, r, w, k) for eid, l, r, w, k in g.iter_edge_data()}
        assert set(flat) == set(g.edge_ids())
        for e in g.edges():
            assert flat[e.id] == (e.left, e.right, e.weight, e.kind)

    def test_iter_edge_data_skips_removed_edges(self):
        g = self.graph()
        victim = g.edge_ids()[0]
        g.remove_edge(victim)
        assert victim not in {eid for eid, *_rest in g.iter_edge_data()}
