"""WorkerPool: ordering, reuse, failure surfacing, telemetry merge."""

import os
import pathlib
import signal
import time

import pytest

from repro import obs
from repro.obs.metrics import MetricsRegistry
from repro.parallel.pool import (
    ParallelError,
    PoolReport,
    TaskTimeoutError,
    WorkerCrashError,
    WorkerPool,
    WorkerTaskError,
    resolve_jobs,
)
from repro.resilience import FaultSpec, RetryPolicy
from repro.util.errors import ConfigError


def square(x):
    return x * x


def sleepy(seconds):
    time.sleep(seconds)
    return seconds


def sleep_until_retried(path_str):
    """Deadlock on the first attempt, succeed on any later one."""
    flag = pathlib.Path(path_str)
    if not flag.exists():
        flag.write_text("first attempt")
        time.sleep(60)
    return "ok"


def fail_on_negative(x):
    if x < 0:
        raise ValueError(f"no negatives, got {x}")
    return x + 1


def record_metric(x):
    obs.metrics().counter("pooltest.calls").inc()
    obs.metrics().histogram("pooltest.values").observe(float(x))
    return x


def die_on_sentinel(x):
    if x == "die":
        os.kill(os.getpid(), signal.SIGKILL)
    return x


def record_then_die(x):
    obs.metrics().counter("pooltest.calls").inc()
    if x == "die":
        os.kill(os.getpid(), signal.SIGKILL)
    return x


class TestResolveJobs:
    def test_defaults_to_cpu_count(self):
        assert resolve_jobs(None) == (os.cpu_count() or 1)
        assert resolve_jobs(0) == (os.cpu_count() or 1)

    def test_explicit(self):
        assert resolve_jobs(3) == 3

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            resolve_jobs(-1)


class TestMap:
    def test_submission_order(self):
        with WorkerPool(2, square) as pool:
            assert pool.map(list(range(20))) == [x * x for x in range(20)]

    def test_reuse_across_maps(self):
        with WorkerPool(2, square) as pool:
            assert pool.map([1, 2, 3]) == [1, 4, 9]
            assert pool.map([4, 5]) == [16, 25]
            assert pool.map([]) == []

    def test_explicit_chunk_size(self):
        with WorkerPool(2, square) as pool:
            assert pool.map(list(range(7)), chunk_size=1) == [
                x * x for x in range(7)
            ]

    def test_task_error_names_lowest_index(self):
        with WorkerPool(2, fail_on_negative) as pool:
            with pytest.raises(WorkerTaskError) as excinfo:
                pool.map([1, 2, -7, 3, -1])
            assert excinfo.value.index == 2
            assert "ValueError" in excinfo.value.detail
            assert "-7" in excinfo.value.detail

    def test_worker_stays_warm_after_task_error(self):
        with WorkerPool(1, fail_on_negative) as pool:
            with pytest.raises(WorkerTaskError):
                pool.map([-1])
            assert pool.map([5]) == [6]

    def test_map_after_shutdown_raises(self):
        pool = WorkerPool(1, square)
        pool.shutdown()
        with pytest.raises(ParallelError):
            pool.map([1])

    def test_worker_crash_detected(self):
        pool = WorkerPool(1, die_on_sentinel)
        try:
            with pytest.raises(WorkerCrashError, match="died mid-batch"):
                pool.map(["ok", "die", "never"])
        finally:
            pool.shutdown()


class TestTaskTimeout:
    def test_deadlocked_worker_raises_timeout_not_hang(self):
        """Regression: map() used to hang forever on a deadlocked worker."""
        pool = WorkerPool(1, sleepy, task_timeout=0.3)
        try:
            start = time.monotonic()
            with pytest.raises(TaskTimeoutError, match="task deadline"):
                pool.map([60.0])
            assert time.monotonic() - start < 10.0
        finally:
            pool.shutdown()

    def test_per_call_timeout_overrides_pool_default(self):
        pool = WorkerPool(1, sleepy, task_timeout=120.0)
        try:
            with pytest.raises(TaskTimeoutError, match="0.3"):
                pool.map([60.0], timeout=0.3)
        finally:
            pool.shutdown()

    def test_pool_usable_after_timeout(self):
        """The stuck worker is killed and respawned, not leaked."""
        pool = WorkerPool(1, sleepy, task_timeout=0.3)
        try:
            with pytest.raises(TaskTimeoutError):
                pool.map([60.0])
            assert pool.map([0.0]) == [0.0]
        finally:
            pool.shutdown()

    def test_timeout_retried_when_policy_allows(self, tmp_path):
        flag = tmp_path / "attempted"
        retry = RetryPolicy(max_attempts=2, backoff_base=0.0, jitter=0.0)
        with obs.observed() as (registry, _):
            pool = WorkerPool(1, sleep_until_retried, retry=retry,
                              task_timeout=0.5)
            try:
                assert pool.map([str(flag)]) == ["ok"]
            finally:
                pool.shutdown()
            snap = registry.snapshot()
            assert snap["resilience.retries.pool"]["value"] >= 1
            assert snap["resilience.worker_respawns"]["value"] >= 1

    def test_retry_task_timeout_is_the_default(self):
        retry = RetryPolicy(max_attempts=1, task_timeout=0.3)
        pool = WorkerPool(1, sleepy, retry=retry)
        try:
            with pytest.raises(TaskTimeoutError):
                pool.map([60.0])
        finally:
            pool.shutdown()

    def test_bad_timeout_rejected(self):
        with pytest.raises(ConfigError, match="task_timeout"):
            WorkerPool(1, square, task_timeout=-1.0)


class TestCrashInjection:
    def test_injected_crashes_retried_to_completion(self):
        plan = FaultSpec(seed=4, worker_crash_rate=0.4).plan()
        retry = RetryPolicy(max_attempts=6, backoff_base=0.0, jitter=0.0)
        with obs.observed() as (registry, _):
            with WorkerPool(2, square, retry=retry, fault_plan=plan) as pool:
                assert pool.map(list(range(20))) == [x * x for x in range(20)]
            snap = registry.snapshot()
            assert snap["resilience.worker_respawns"]["value"] > 0
            assert snap["resilience.retries.pool"]["value"] > 0
            assert snap["resilience.faults_injected.worker_crash"]["value"] > 0

    def test_injected_crash_sequence_reproducible(self):
        plan = FaultSpec(seed=4, worker_crash_rate=0.4).plan()
        retry = RetryPolicy(max_attempts=6, backoff_base=0.0, jitter=0.0)

        def respawns():
            with obs.observed() as (registry, _):
                with WorkerPool(2, square, retry=retry, fault_plan=plan) as p:
                    p.map(list(range(20)))
                return registry.snapshot()["resilience.worker_respawns"]["value"]

        assert respawns() == respawns()

    def test_crash_without_retry_raises(self):
        plan = FaultSpec(seed=1, worker_crash_rate=1.0).plan()
        pool = WorkerPool(1, square, fault_plan=plan)
        try:
            with pytest.raises(WorkerCrashError, match="died mid-batch"):
                pool.map([1, 2, 3])
        finally:
            pool.shutdown()

    def test_crash_exhausting_retries_raises(self):
        plan = FaultSpec(seed=1, worker_crash_rate=1.0).plan()
        retry = RetryPolicy(max_attempts=3, backoff_base=0.0, jitter=0.0)
        pool = WorkerPool(1, square, retry=retry, fault_plan=plan)
        try:
            with pytest.raises(WorkerCrashError, match="retries exhausted"):
                pool.map([1])
        finally:
            pool.shutdown()


class TestShutdownWithDeadWorkers:
    def test_shutdown_prompt_when_workers_already_died(self):
        """Regression: shutdown used to wait out the full deadline when a
        SIGKILL'd worker died holding the task queue's lock."""
        pool = WorkerPool(4, square)
        pool.map(list(range(8)))
        victims = pool._workers[:3]
        for proc in victims:
            os.kill(proc.pid, signal.SIGKILL)
        for proc in victims:
            proc.join(timeout=5.0)
        start = time.monotonic()
        report = pool.shutdown()
        elapsed = time.monotonic() - start
        assert isinstance(report, PoolReport)
        assert elapsed < 5.0, f"shutdown stalled for {elapsed:.2f}s"

    def test_shutdown_all_workers_dead(self):
        pool = WorkerPool(2, square)
        pool.map([1, 2])
        for proc in pool._workers:
            os.kill(proc.pid, signal.SIGKILL)
        for proc in pool._workers:
            proc.join(timeout=5.0)
        start = time.monotonic()
        report = pool.shutdown()
        assert time.monotonic() - start < 5.0
        assert isinstance(report, PoolReport)


class TestTelemetry:
    def test_worker_metrics_merged_into_parent(self):
        with obs.observed() as (registry, _tracer):
            with WorkerPool(2, record_metric) as pool:
                pool.map(list(range(10)))
            # merge happens at shutdown (context exit)
        assert registry.counter("pooltest.calls").value == 10
        hist = registry.histogram("pooltest.values").to_dict()
        assert hist["count"] == 10
        assert hist["min"] == 0.0 and hist["max"] == 9.0

    def test_no_recording_when_parent_disabled(self):
        assert not obs.enabled()
        with WorkerPool(1, record_metric) as pool:
            pool.map([1, 2])
            report = pool.shutdown()
        # Workers ran with obs off: the shipped snapshots are empty.
        assert all(snapshot == {} for snapshot in report.worker_metrics)

    def test_report_cache_totals(self):
        with WorkerPool(2, square) as pool:
            pool.map([1])
            report = pool.shutdown()
        totals = report.cache_totals()
        assert set(totals) == {"hits", "misses", "evictions", "size"}
        assert len(report.cache_stats) == 2

    def test_shutdown_idempotent(self):
        pool = WorkerPool(1, square)
        first = pool.shutdown()
        second = pool.shutdown()
        assert len(first.cache_stats) == 1
        assert second.cache_stats == []

    def test_explicit_record_obs_overrides_parent_state(self):
        registry = MetricsRegistry()
        with WorkerPool(1, record_metric, record_obs=True) as pool:
            pool.map([3])
            obs.enable(registry=registry)
            try:
                pool.shutdown()
            finally:
                obs.disable()
        assert registry.counter("pooltest.calls").value == 1


class TestStreamingTelemetry:
    """Mid-run cumulative worker snapshots (new in the live-telemetry PR)."""

    def test_invalid_stream_knobs_rejected(self):
        with pytest.raises(ConfigError):
            WorkerPool(1, square, stream_items=0)
        with pytest.raises(ConfigError):
            WorkerPool(1, square, stream_seconds=0.0)

    def test_pool_registers_live_source_while_streaming(self):
        from repro.obs import live

        with obs.observed():
            pool = WorkerPool(1, record_metric, stream_items=1)
            try:
                assert pool.live_metrics_snapshot in live.live_sources()
            finally:
                pool.shutdown()
            assert pool.live_metrics_snapshot not in live.live_sources()

    def test_no_live_source_when_streaming_disabled(self):
        from repro.obs import live

        with obs.observed():
            with WorkerPool(
                1, record_metric, stream_items=None, stream_seconds=None
            ) as pool:
                assert pool.live_metrics_snapshot not in live.live_sources()
                pool.map([1, 2])

    def test_streamed_counters_visible_before_shutdown(self):
        with obs.observed():
            pool = WorkerPool(2, record_metric, stream_items=1)
            try:
                pool.map(list(range(8)))
                # Streams arrive before each chunk's "done", so by map
                # return the live aggregate covers every item.
                snapshot = pool.live_metrics_snapshot()
                assert snapshot["pooltest.calls"]["value"] == 8
                assert snapshot["pooltest.values"]["count"] == 8
            finally:
                pool.shutdown()

    def test_final_supersedes_stream_totals_bit_identical(self):
        def run(**stream_kwargs) -> dict:
            with obs.observed() as (registry, _):
                with WorkerPool(2, record_metric, **stream_kwargs) as pool:
                    pool.map(list(range(16)))
                return registry.snapshot(samples=True)

        streamed = run(stream_items=1)
        plain = run(stream_items=None, stream_seconds=None)
        assert streamed["pooltest.calls"] == plain["pooltest.calls"]
        # Sample *order* reflects which worker's final merged first —
        # racy in any run — so compare the multiset and the summary.
        a = streamed["pooltest.values"]
        b = plain["pooltest.values"]
        assert sorted(a.pop("samples")) == sorted(b.pop("samples"))
        assert a == b

    def test_crashed_worker_keeps_last_streamed_snapshot(self):
        """Regression: telemetry recorded before a crash must survive it."""
        with obs.observed() as (registry, _):
            pool = WorkerPool(1, record_then_die, stream_items=1)
            try:
                assert pool.map([1, 2, 3]) == [1, 2, 3]
                with pytest.raises(WorkerCrashError):
                    pool.map(["die"])
            finally:
                report = pool.shutdown()
            kinds = [e.kind for e in obs.events().tail()]
        # The dead incarnation sent no final; its last cumulative stream
        # (covering the three successful items) is in the report anyway.
        assert any(s.get("pooltest.calls", {}).get("value") == 3
                   for s in report.worker_metrics)
        assert registry.counter("pooltest.calls").value == 3
        assert "worker.crash" in kinds
        assert "worker.respawn" in kinds

    def test_without_streaming_crash_loses_worker_metrics(self):
        """The retention above really comes from the stream frames."""
        with obs.observed() as (registry, _):
            pool = WorkerPool(
                1, record_then_die, stream_items=None, stream_seconds=None
            )
            try:
                pool.map([1, 2, 3])
                with pytest.raises(WorkerCrashError):
                    pool.map(["die"])
            finally:
                pool.shutdown()
        assert registry.counter("pooltest.calls").value == 0


class TestTimingKnobs:
    """stall_grace / join_timeout: constructor parameters since PR 5."""

    @pytest.mark.parametrize(
        "kwargs", [{"stall_grace": 0.0}, {"stall_grace": -1.0},
                   {"join_timeout": 0.0}, {"join_timeout": -0.5}]
    )
    def test_non_positive_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            WorkerPool(1, square, **kwargs)

    def test_defaults_keep_historical_values(self):
        pool = WorkerPool(1, square)
        try:
            assert pool._stall_grace == 1.0
            assert pool._join_timeout == 1.0
        finally:
            pool.shutdown()

    def test_custom_values_still_compute(self):
        with WorkerPool(2, square, stall_grace=0.2, join_timeout=0.3) as pool:
            assert pool.map(range(8)) == [x * x for x in range(8)]

    def test_short_stall_grace_speeds_dead_worker_shutdown(self):
        pool = WorkerPool(
            2, square,
            retry=RetryPolicy(max_attempts=2, backoff_base=0.0, jitter=0.0),
            stall_grace=0.25, join_timeout=0.25,
        )
        pool.map(range(4))
        os.kill(pool._workers[0].pid, signal.SIGKILL)
        pool._workers[0].join(timeout=5.0)
        start = time.monotonic()
        pool.shutdown(timeout=10.0)
        # Historical constants gave up after >1s of silence; the 0.25s
        # grace must come in well under that plus join overhead.
        assert time.monotonic() - start < 5.0
