"""WorkerPool: ordering, reuse, failure surfacing, telemetry merge."""

import os
import signal

import pytest

from repro import obs
from repro.obs.metrics import MetricsRegistry
from repro.parallel.pool import (
    ParallelError,
    WorkerCrashError,
    WorkerPool,
    WorkerTaskError,
    resolve_jobs,
)
from repro.util.errors import ConfigError


def square(x):
    return x * x


def fail_on_negative(x):
    if x < 0:
        raise ValueError(f"no negatives, got {x}")
    return x + 1


def record_metric(x):
    obs.metrics().counter("pooltest.calls").inc()
    obs.metrics().histogram("pooltest.values").observe(float(x))
    return x


def die_on_sentinel(x):
    if x == "die":
        os.kill(os.getpid(), signal.SIGKILL)
    return x


class TestResolveJobs:
    def test_defaults_to_cpu_count(self):
        assert resolve_jobs(None) == (os.cpu_count() or 1)
        assert resolve_jobs(0) == (os.cpu_count() or 1)

    def test_explicit(self):
        assert resolve_jobs(3) == 3

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            resolve_jobs(-1)


class TestMap:
    def test_submission_order(self):
        with WorkerPool(2, square) as pool:
            assert pool.map(list(range(20))) == [x * x for x in range(20)]

    def test_reuse_across_maps(self):
        with WorkerPool(2, square) as pool:
            assert pool.map([1, 2, 3]) == [1, 4, 9]
            assert pool.map([4, 5]) == [16, 25]
            assert pool.map([]) == []

    def test_explicit_chunk_size(self):
        with WorkerPool(2, square) as pool:
            assert pool.map(list(range(7)), chunk_size=1) == [
                x * x for x in range(7)
            ]

    def test_task_error_names_lowest_index(self):
        with WorkerPool(2, fail_on_negative) as pool:
            with pytest.raises(WorkerTaskError) as excinfo:
                pool.map([1, 2, -7, 3, -1])
            assert excinfo.value.index == 2
            assert "ValueError" in excinfo.value.detail
            assert "-7" in excinfo.value.detail

    def test_worker_stays_warm_after_task_error(self):
        with WorkerPool(1, fail_on_negative) as pool:
            with pytest.raises(WorkerTaskError):
                pool.map([-1])
            assert pool.map([5]) == [6]

    def test_map_after_shutdown_raises(self):
        pool = WorkerPool(1, square)
        pool.shutdown()
        with pytest.raises(ParallelError):
            pool.map([1])

    def test_worker_crash_detected(self):
        pool = WorkerPool(1, die_on_sentinel)
        try:
            with pytest.raises(WorkerCrashError, match="died mid-batch"):
                pool.map(["ok", "die", "never"])
        finally:
            pool.shutdown()


class TestTelemetry:
    def test_worker_metrics_merged_into_parent(self):
        with obs.observed() as (registry, _tracer):
            with WorkerPool(2, record_metric) as pool:
                pool.map(list(range(10)))
            # merge happens at shutdown (context exit)
        assert registry.counter("pooltest.calls").value == 10
        hist = registry.histogram("pooltest.values").to_dict()
        assert hist["count"] == 10
        assert hist["min"] == 0.0 and hist["max"] == 9.0

    def test_no_recording_when_parent_disabled(self):
        assert not obs.enabled()
        with WorkerPool(1, record_metric) as pool:
            pool.map([1, 2])
            report = pool.shutdown()
        # Workers ran with obs off: the shipped snapshots are empty.
        assert all(snapshot == {} for snapshot in report.worker_metrics)

    def test_report_cache_totals(self):
        with WorkerPool(2, square) as pool:
            pool.map([1])
            report = pool.shutdown()
        totals = report.cache_totals()
        assert set(totals) == {"hits", "misses", "evictions", "size"}
        assert len(report.cache_stats) == 2

    def test_shutdown_idempotent(self):
        pool = WorkerPool(1, square)
        first = pool.shutdown()
        second = pool.shutdown()
        assert len(first.cache_stats) == 1
        assert second.cache_stats == []

    def test_explicit_record_obs_overrides_parent_state(self):
        registry = MetricsRegistry()
        with WorkerPool(1, record_metric, record_obs=True) as pool:
            pool.map([3])
            obs.enable(registry=registry)
            try:
                pool.shutdown()
            finally:
                obs.disable()
        assert registry.counter("pooltest.calls").value == 1
