"""schedule_batch: bit-identical to the serial path, clear failures."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cache import ScheduleCache, cached_schedule
from repro.core.schedule import Schedule
from repro.graph.bipartite import BipartiteGraph
from repro.parallel import make_schedule_pool, schedule_batch
from repro.parallel.pool import WorkerTaskError
from repro.util.errors import ConfigError
from tests.conftest import bipartite_graphs

ALGORITHMS = ("ggp", "oggp", "greedy")
ENGINES = ("fast", "vector", "resume", "reference")


def flat(schedule: Schedule) -> tuple:
    """Every observable field, for exact equality checks."""
    return (
        schedule.k,
        schedule.beta,
        tuple(
            (
                step.duration,
                tuple(
                    (t.edge_id, t.left, t.right, t.amount)
                    for t in step.transfers
                ),
            )
            for step in schedule.steps
        ),
    )


@st.composite
def graph_batches(draw):
    """A small batch with deliberate duplicates (same pattern, new ids)."""
    base = draw(st.lists(bipartite_graphs(), min_size=1, max_size=4))
    graphs = list(base)
    for index in draw(
        st.lists(st.integers(0, len(base) - 1), min_size=0, max_size=3)
    ):
        graphs.append(base[index].copy())
    return graphs


class TestBitIdentical:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("engine", ENGINES)
    @given(graphs=graph_batches(), k=st.integers(1, 6), beta=st.sampled_from([0.0, 1.0]))
    @settings(max_examples=8, deadline=None)
    def test_batch_equals_serial_cached_loop(
        self, algorithm, engine, graphs, k, beta
    ):
        serial_cache = ScheduleCache()
        serial = [
            cached_schedule(
                g, k=k, beta=beta, algorithm=algorithm, engine=engine,
                cache=serial_cache,
            )
            for g in graphs
        ]
        batch_cache = ScheduleCache()
        batch = schedule_batch(
            graphs, algorithm, k=k, beta=beta, engine=engine, jobs=2,
            cache=batch_cache, min_parallel_items=0,
        )
        assert [flat(s) for s in serial] == [flat(b) for b in batch]
        assert serial_cache.stats()["hits"] == batch_cache.stats()["hits"]
        assert serial_cache.stats()["misses"] == batch_cache.stats()["misses"]

    def test_uncached_batch_equals_plain_loop(self):
        graphs = [
            BipartiteGraph.from_edges([(0, 0, 4), (0, 1, 2), (1, 1, 3)]),
            BipartiteGraph.from_edges([(0, 0, 5), (1, 0, 1)]),
        ]
        serial = [
            cached_schedule(g, k=2, beta=1.0, algorithm="oggp", cache=None)
            for g in graphs
        ]
        batch = schedule_batch(graphs, "oggp", k=2, beta=1.0, jobs=2, cache=None)
        assert [flat(s) for s in serial] == [flat(b) for b in batch]

    def test_jobs_one_is_serial(self):
        graphs = [BipartiteGraph.from_edges([(0, 0, 2)])]
        cache = ScheduleCache()
        batch = schedule_batch(graphs, "oggp", k=1, beta=0.0, jobs=1, cache=cache)
        assert flat(batch[0]) == flat(
            cached_schedule(graphs[0], k=1, beta=0.0, algorithm="oggp")
        )

    def test_empty_batch(self):
        assert schedule_batch([], "oggp", k=1, beta=0.0, jobs=2) == []

    def test_reused_pool_across_batches(self):
        g1 = BipartiteGraph.from_edges([(0, 0, 4), (0, 1, 2)])
        g2 = BipartiteGraph.from_edges([(0, 0, 3), (1, 1, 3)])
        with make_schedule_pool(jobs=2) as pool:
            first = schedule_batch(
                [g1, g2], "oggp", k=2, beta=1.0, pool=pool, cache=None
            )
            second = schedule_batch(
                [g1], "ggp", k=2, beta=1.0, pool=pool, cache=None
            )
        assert flat(first[0]) == flat(
            cached_schedule(g1, k=2, beta=1.0, algorithm="oggp", cache=None)
        )
        assert flat(second[0]) == flat(
            cached_schedule(g1, k=2, beta=1.0, algorithm="ggp", cache=None)
        )

    def test_schedules_validate(self):
        graphs = [
            BipartiteGraph.from_edges([(0, 0, 4), (0, 1, 2), (1, 1, 3)]),
            BipartiteGraph.from_edges([(0, 0, 1), (1, 1, 6), (1, 0, 2)]),
        ]
        for schedule, graph in zip(
            schedule_batch(graphs, "oggp", k=2, beta=1.0, jobs=2, cache=None),
            graphs,
        ):
            schedule.validate(graph)


class TestValidation:
    def test_unknown_algorithm(self):
        with pytest.raises(ConfigError, match="unknown algorithm"):
            schedule_batch([], "simplex", k=1, beta=0.0)

    def test_unknown_engine_lists_valid_ones(self):
        with pytest.raises(ValueError, match="fast.*resume.*reference"):
            schedule_batch([], "oggp", k=1, beta=0.0, engine="warp")


class TestFailureSurfacing:
    def test_worker_error_names_graph_index(self):
        good = BipartiteGraph.from_edges([(0, 0, 2)])
        # wrgp requires a square weight-regular graph; this one is not,
        # so the worker raises and the error must name graph 1.
        bad = BipartiteGraph.from_edges([(0, 0, 2), (0, 1, 5)])
        with pytest.raises(WorkerTaskError, match="graph 1 of the batch") as exc:
            schedule_batch(
                [good, bad], "wrgp", k=1, beta=0.0, jobs=2, cache=None,
                min_parallel_items=0,
            )
        assert exc.value.index == 1
        assert "wrgp" in str(exc.value)


class TestFaultTolerance:
    def test_bit_identical_under_injected_crashes(self):
        """Crashed workers are respawned and retried; the output must
        still match the serial path exactly."""
        from repro.graph.generators import random_bipartite
        from repro.resilience import FaultSpec, RetryPolicy

        graphs = [random_bipartite(s, max_side=5, max_edges=15) for s in range(8)]
        plan = FaultSpec(seed=13, worker_crash_rate=0.35).plan()
        retry = RetryPolicy(max_attempts=6, backoff_base=0.0, jitter=0.0)
        faulted = schedule_batch(
            graphs, "oggp", k=3, beta=1.0, jobs=2, cache=None,
            retry=retry, fault_plan=plan, min_parallel_items=0,
        )
        serial = schedule_batch(graphs, "oggp", k=3, beta=1.0, jobs=1, cache=None)
        assert [flat(s) for s in faulted] == [flat(s) for s in serial]

    def test_crashes_without_retry_fail_loudly(self):
        from repro.parallel.pool import WorkerCrashError
        from repro.resilience import FaultSpec

        g = BipartiteGraph.from_edges([(0, 0, 2)])
        plan = FaultSpec(seed=1, worker_crash_rate=1.0).plan()
        with pytest.raises(WorkerCrashError):
            schedule_batch(
                [g], "oggp", k=1, beta=0.0, jobs=2, cache=None, fault_plan=plan,
                min_parallel_items=0,
            )


class TestSerialFallback:
    """Tiny batches skip worker fan-out (cost cutoff) but stay identical."""

    def _tiny_batch(self):
        from repro.graph.generators import random_bipartite

        return [random_bipartite(s, max_side=4, max_edges=10) for s in range(4)]

    def test_small_batch_falls_back_to_serial(self):
        from repro import obs

        graphs = self._tiny_batch()
        with obs.observed() as (reg, _tr):
            batched = schedule_batch(graphs, "oggp", k=3, beta=1.0, jobs=4, cache=None)
        assert reg.counter("parallel.batch.serial_fallback").value == 1
        serial = schedule_batch(graphs, "oggp", k=3, beta=1.0, jobs=1, cache=None)
        assert [flat(s) for s in batched] == [flat(s) for s in serial]

    def test_min_parallel_items_zero_forces_fanout(self):
        from repro import obs

        graphs = self._tiny_batch()
        with obs.observed() as (reg, _tr):
            schedule_batch(
                graphs, "oggp", k=3, beta=1.0, jobs=2, cache=None,
                min_parallel_items=0,
            )
        assert reg.counter("parallel.batch.serial_fallback").value == 0

    def test_min_parallel_items_threshold(self):
        from repro import obs

        graphs = self._tiny_batch()
        with obs.observed() as (reg, _tr):
            schedule_batch(
                graphs, "oggp", k=3, beta=1.0, jobs=2, cache=None,
                min_parallel_items=len(graphs) + 1,
            )
        assert reg.counter("parallel.batch.serial_fallback").value == 1

    def test_explicit_pool_never_falls_back(self):
        from repro import obs

        graphs = self._tiny_batch()
        with make_schedule_pool(jobs=2) as pool:
            with obs.observed() as (reg, _tr):
                batched = schedule_batch(
                    graphs, "oggp", k=3, beta=1.0, pool=pool, cache=None
                )
        assert reg.counter("parallel.batch.serial_fallback").value == 0
        serial = schedule_batch(graphs, "oggp", k=3, beta=1.0, jobs=1, cache=None)
        assert [flat(s) for s in batched] == [flat(s) for s in serial]
