"""Wire format: faithful round-trips and malformed-input rejection."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cache import canonical_signature
from repro.core.regularize import regularize
from repro.graph.bipartite import BipartiteGraph, EdgeKind, NodeKind
from repro.parallel.wire import decode_graph, encode_graph
from repro.util.errors import GraphError
from tests.conftest import bipartite_graphs


def graph_state(g: BipartiteGraph) -> tuple:
    """Everything the schedulers can observe about a graph."""
    return (
        sorted(g.left_nodes()),
        sorted(g.right_nodes()),
        [(n, g.left_node_kind(n)) for n in sorted(g.left_nodes())],
        [(n, g.right_node_kind(n)) for n in sorted(g.right_nodes())],
        sorted(
            (e.id, e.left, e.right, e.weight, type(e.weight), e.kind)
            for e in g.edges()
        ),
        g._next_edge_id,
    )


class TestRoundTrip:
    @given(bipartite_graphs())
    @settings(max_examples=60, deadline=None)
    def test_random_int_graphs(self, g):
        assert graph_state(decode_graph(encode_graph(g))) == graph_state(g)

    @given(bipartite_graphs(integer_weights=False))
    @settings(max_examples=40, deadline=None)
    def test_random_float_graphs(self, g):
        assert graph_state(decode_graph(encode_graph(g))) == graph_state(g)

    def test_mixed_weight_types(self):
        g = BipartiteGraph.from_edges([(0, 0, 3), (0, 1, 2.5), (1, 1, 7)])
        g2 = decode_graph(encode_graph(g))
        assert graph_state(g2) == graph_state(g)
        weights = {e.weight for e in g2.edges()}
        assert weights == {3, 2.5, 7}
        assert {type(w) for w in weights} == {int, float}

    def test_edge_id_gaps_survive(self):
        g = BipartiteGraph.from_edges([(0, 0, 4), (0, 1, 2), (1, 1, 3)])
        g.remove_edge(1)
        g2 = decode_graph(encode_graph(g))
        assert graph_state(g2) == graph_state(g)
        assert not g2.has_edge_id(1)
        # New edges keep allocating past the old high-water mark.
        assert g2._next_edge_id == g._next_edge_id

    def test_filler_kinds_survive(self):
        g = BipartiteGraph.from_edges([(0, 0, 4), (1, 1, 2)])
        result = regularize(g, k=2)
        reg = result.graph
        kinds = {e.kind for e in reg.edges()}
        assert EdgeKind.ORIGINAL in kinds  # sanity: regularize kept them
        assert graph_state(decode_graph(encode_graph(reg))) == graph_state(reg)

    def test_isolated_nodes_survive(self):
        g = BipartiteGraph.from_edges([(0, 0, 1)])
        g.add_left_node(5, NodeKind.PADDING)
        g.add_right_node(9, NodeKind.FILLER)
        g2 = decode_graph(encode_graph(g))
        assert graph_state(g2) == graph_state(g)
        assert g2.left_node_kind(5) is NodeKind.PADDING
        assert g2.right_node_kind(9) is NodeKind.FILLER

    def test_empty_graph(self):
        g = BipartiteGraph()
        assert graph_state(decode_graph(encode_graph(g))) == graph_state(g)

    @given(bipartite_graphs())
    @settings(max_examples=20, deadline=None)
    def test_signature_preserved(self, g):
        assert canonical_signature(decode_graph(encode_graph(g))) == (
            canonical_signature(g)
        )


class TestMalformedInput:
    def test_bad_magic(self):
        with pytest.raises(GraphError, match="not a KPBW"):
            decode_graph(b"NOPE" + b"\x00" * 64)

    def test_truncated(self):
        data = encode_graph(BipartiteGraph.from_edges([(0, 0, 1)]))
        with pytest.raises(GraphError):
            decode_graph(data[:10])

    def test_trailing_bytes(self):
        data = encode_graph(BipartiteGraph.from_edges([(0, 0, 1)]))
        with pytest.raises(GraphError, match="trailing"):
            decode_graph(data + b"\x00")

    def test_bad_version(self):
        data = bytearray(encode_graph(BipartiteGraph.from_edges([(0, 0, 1)])))
        data[4] = 99
        with pytest.raises(GraphError, match="version"):
            decode_graph(bytes(data))

    def test_mixed_int_beyond_f64_rejected(self):
        g = BipartiteGraph.from_edges([(0, 0, 2**60), (0, 1, 0.5)])
        with pytest.raises(GraphError, match="exact"):
            encode_graph(g)

    def test_huge_pure_int_weights_ok(self):
        g = BipartiteGraph.from_edges([(0, 0, 2**60), (0, 1, 3)])
        g2 = decode_graph(encode_graph(g))
        assert sorted(e.weight for e in g2.edges()) == [3, 2**60]


def _reference_message() -> bytes:
    g = BipartiteGraph.from_edges(
        [(0, 0, 3), (0, 1, 7), (1, 0, 2), (1, 1, 5), (2, 2, 11)]
    )
    return encode_graph(g)


class TestCorruptionFuzz:
    """Corrupted payloads always raise GraphError — never struct.error,
    IndexError, or a silently-wrong graph."""

    def _expect_rejection_or_identity(self, mutated: bytes) -> None:
        reference = graph_state(decode_graph(_reference_message()))
        try:
            decoded = decode_graph(mutated)
        except GraphError:
            return  # rejected: good
        # The only acceptable non-rejection is a graph identical to the
        # original (mutation landed on bytes that don't matter — with a
        # CRC in place this should never happen, but the property is
        # "never silently wrong", so check it rather than assume).
        assert graph_state(decoded) == reference

    @given(st.integers(min_value=0, max_value=len(_reference_message()) - 1))
    @settings(max_examples=200, deadline=None)
    def test_truncation_any_length(self, cut):
        with pytest.raises(GraphError):
            decode_graph(_reference_message()[:cut])

    @given(
        st.integers(min_value=0, max_value=len(_reference_message()) - 1),
        st.integers(min_value=0, max_value=7),
    )
    @settings(max_examples=300, deadline=None)
    def test_single_bit_flip(self, index, bit):
        data = bytearray(_reference_message())
        data[index] ^= 1 << bit
        with pytest.raises(GraphError):
            decode_graph(bytes(data))

    @given(
        st.integers(min_value=0, max_value=len(_reference_message()) - 1),
        st.binary(min_size=1, max_size=16),
    )
    @settings(max_examples=200, deadline=None)
    def test_random_splice(self, index, junk):
        data = bytearray(_reference_message())
        data[index : index + len(junk)] = junk
        self._expect_rejection_or_identity(bytes(data))

    @given(st.integers(min_value=1, max_value=64))
    @settings(max_examples=50, deadline=None)
    def test_length_extension(self, extra):
        with pytest.raises(GraphError):
            decode_graph(_reference_message() + b"\x00" * extra)

    @given(st.binary(min_size=0, max_size=128))
    @settings(max_examples=200, deadline=None)
    def test_arbitrary_bytes(self, junk):
        with pytest.raises(GraphError):
            decode_graph(junk)

    @given(st.binary(min_size=0, max_size=96))
    @settings(max_examples=200, deadline=None)
    def test_arbitrary_bytes_with_magic(self, junk):
        with pytest.raises(GraphError):
            decode_graph(b"KPBW" + junk)

    def test_header_count_mismatch(self):
        # Inflate num_edges without adding payload: length check fires
        # before any array is sliced.
        import struct

        data = bytearray(_reference_message())
        (n_edges,) = struct.unpack_from("<Q", data, 28)
        struct.pack_into("<Q", data, 28, n_edges + 1)
        with pytest.raises(GraphError):
            decode_graph(bytes(data))

    def test_unknown_flags_rejected(self):
        data = bytearray(_reference_message())
        data[5] |= 0x80
        with pytest.raises(GraphError):
            decode_graph(bytes(data))

    def test_checksum_protects_weights(self):
        # Flip a weight byte and fix nothing else: CRC catches it even
        # though the length and structure still parse.
        data = bytearray(_reference_message())
        data[-1] ^= 0xFF
        with pytest.raises(GraphError, match="checksum"):
            decode_graph(bytes(data))
