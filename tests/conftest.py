"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import pytest
from hypothesis import strategies as st

from repro.graph.bipartite import BipartiteGraph


# ---------------------------------------------------------------------------
# Hypothesis strategies
# ---------------------------------------------------------------------------

@st.composite
def bipartite_graphs(
    draw,
    max_side: int = 6,
    max_edges: int = 12,
    min_edges: int = 1,
    max_weight: int = 12,
    integer_weights: bool = True,
):
    """Random small bipartite multigraph (parallel edges allowed)."""
    n1 = draw(st.integers(1, max_side))
    n2 = draw(st.integers(1, max_side))
    m = draw(st.integers(min_edges, max_edges))
    if integer_weights:
        weight = st.integers(1, max_weight)
    else:
        weight = st.floats(
            0.01, float(max_weight), allow_nan=False, allow_infinity=False
        )
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n1 - 1), st.integers(0, n2 - 1), weight),
            min_size=m,
            max_size=m,
        )
    )
    return BipartiteGraph.from_edges(edges)


@st.composite
def simple_bipartite_graphs(
    draw,
    max_side: int = 6,
    max_edges: int = 12,
    max_weight: int = 12,
):
    """Random graph with at most one edge per (left, right) pair."""
    n1 = draw(st.integers(1, max_side))
    n2 = draw(st.integers(1, max_side))
    pairs = draw(
        st.sets(
            st.tuples(st.integers(0, n1 - 1), st.integers(0, n2 - 1)),
            min_size=1,
            max_size=min(max_edges, n1 * n2),
        )
    )
    weights = draw(
        st.lists(
            st.integers(1, max_weight), min_size=len(pairs), max_size=len(pairs)
        )
    )
    return BipartiteGraph.from_edges(
        [(l, r, w) for (l, r), w in zip(sorted(pairs), weights)]
    )


ks = st.integers(1, 8)
betas = st.sampled_from([0.0, 0.5, 1.0, 3.0])


# ---------------------------------------------------------------------------
# Fixtures
# ---------------------------------------------------------------------------

@pytest.fixture
def fig2_graph() -> BipartiteGraph:
    """The paper's Figure 2 worked example."""
    from repro.graph.generators import paper_figure2_graph

    return paper_figure2_graph()


@pytest.fixture
def small_graph() -> BipartiteGraph:
    """Hand-built 3+3 graph used across module tests."""
    return BipartiteGraph.from_edges(
        [(0, 0, 4), (0, 1, 2), (1, 1, 3), (2, 0, 1), (2, 2, 5)]
    )
