"""Tests for the structured run-event log (JSONL, schema v1)."""

import json

import pytest

from repro import obs
from repro.obs.events import (
    EVENT_SCHEMA_VERSION,
    NULL_EVENT_LOG,
    Event,
    EventLog,
    NullEventLog,
    load_events,
    validate_event_record,
)
from repro.util.errors import ConfigError


class TestEventLog:
    def test_emit_assigns_monotonic_seq(self):
        log = EventLog()
        a = log.emit("run.start", k=3)
        b = log.emit("round.result", round=0)
        assert (a.seq, b.seq) == (0, 1)
        assert b.ts >= a.ts
        assert log.emitted == 2

    def test_tail_returns_newest(self):
        log = EventLog()
        for i in range(10):
            log.emit("tick", i=i)
        tail = log.tail(3)
        assert [e.fields["i"] for e in tail] == [7, 8, 9]
        assert [e.fields["i"] for e in log.tail(99)] == list(range(10))

    def test_ring_is_bounded_but_seq_keeps_counting(self):
        log = EventLog(max_events=4)
        for i in range(10):
            log.emit("tick", i=i)
        tail = log.tail(99)
        assert len(tail) == 4
        assert tail[-1].seq == 9
        assert log.emitted == 10

    def test_to_dict_is_schema_versioned(self):
        event = EventLog().emit("run.start", method="oggp")
        record = event.to_dict()
        assert record["v"] == EVENT_SCHEMA_VERSION
        assert record["kind"] == "run.start"
        assert record["fields"] == {"method": "oggp"}
        validate_event_record(record, "test")

    def test_non_json_fields_are_coerced(self):
        event = EventLog().emit("odd", where=object())
        json.dumps(event.to_dict())  # must not raise


class TestJsonlMirror:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "run" / "events.jsonl"
        with EventLog(path=path) as log:
            log.emit("run.start", k=3, method="oggp")
            log.emit("round.result", round=0, steps=7)
            log.emit("run.complete", complete=True)
        events = load_events(path)
        assert [e.kind for e in events] == [
            "run.start", "round.result", "run.complete",
        ]
        assert events[0].fields == {"k": 3, "method": "oggp"}
        assert [e.seq for e in events] == [0, 1, 2]

    def test_loader_tolerates_one_torn_tail_line(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path=path) as log:
            log.emit("a")
            log.emit("b")
        with path.open("a") as fh:
            fh.write('{"v": 1, "seq": 2, "ts": 1.0, "ki')  # torn write
        events = load_events(path)
        assert [e.kind for e in events] == ["a", "b"]

    def test_loader_rejects_mid_file_garbage(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path=path) as log:
            log.emit("a")
        with path.open("a") as fh:
            fh.write("not json\n")
            fh.write(json.dumps(Event(5, 1.0, "z", {}).to_dict()) + "\n")
        with pytest.raises(ConfigError):
            load_events(path)

    def test_loader_rejects_non_increasing_seq(self, tmp_path):
        path = tmp_path / "events.jsonl"
        record = Event(3, 1.0, "a", {}).to_dict()
        path.write_text(json.dumps(record) + "\n" + json.dumps(record) + "\n")
        with pytest.raises(ConfigError):
            load_events(path)


class TestValidation:
    def test_missing_keys_rejected(self):
        with pytest.raises(ConfigError):
            validate_event_record({"v": 1, "seq": 0}, "x")

    def test_wrong_schema_version_rejected(self):
        record = Event(0, 1.0, "a", {}).to_dict()
        record["v"] = 99
        with pytest.raises(ConfigError):
            validate_event_record(record, "x")


class TestModuleState:
    def test_emit_is_noop_when_disabled(self):
        assert isinstance(obs.events(), NullEventLog)
        assert obs.emit("never.recorded", x=1) is None
        assert NULL_EVENT_LOG.tail(5) == []

    def test_observed_installs_event_log(self):
        with obs.observed():
            obs.emit("inside", x=1)
            tail = obs.events().tail(5)
            assert [e.kind for e in tail] == ["inside"]
        assert isinstance(obs.events(), NullEventLog)

    def test_observed_accepts_explicit_log(self, tmp_path):
        log = EventLog(path=tmp_path / "e.jsonl")
        with obs.observed(events=log):
            obs.emit("custom")
        log.close()
        assert [e.kind for e in load_events(tmp_path / "e.jsonl")] == ["custom"]
