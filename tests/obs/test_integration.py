"""End-to-end telemetry: the instrumented schedulers and simulators."""

import numpy as np

from repro import obs
from repro.core.ggp import ggp
from repro.core.oggp import oggp
from repro.graph.generators import paper_figure2_graph
from repro.netsim.runner import run_redistribution
from repro.netsim.topology import NetworkSpec


class TestGgpTelemetry:
    def test_phase_spans_on_fig2(self):
        with obs.observed() as (registry, tracer):
            schedule = ggp(paper_figure2_graph(), k=3, beta=1.0)
        schedule.validate(paper_figure2_graph())
        paths = {r.path for r in tracer.records()}
        assert ("ggp",) in paths
        assert ("ggp", "ggp.normalize") in paths
        assert ("ggp", "ggp.regularize") in paths
        assert ("ggp", "ggp.peel") in paths
        # The timers mirror the spans under the same dotted names.
        for name in ("ggp", "ggp.normalize", "ggp.regularize", "ggp.peel"):
            assert registry.timer(name).laps == 1
        assert registry.counter("ggp.calls").value == 1
        # Every step came from one peel of the regular graph.
        assert registry.counter("ggp.peels").value >= schedule.num_steps
        assert registry.counter("matching.hungarian.calls").value > 0

    def test_oggp_peels_match_steps(self):
        with obs.observed() as (registry, tracer):
            schedule = oggp(paper_figure2_graph(), k=3, beta=1.0)
        assert registry.counter("oggp.calls").value == 1
        assert registry.counter("oggp.steps").value == schedule.num_steps
        assert registry.counter("wrgp.peels").value >= schedule.num_steps
        assert registry.counter("matching.bottleneck.calls").value > 0
        by_name = {r.name: r for r in tracer.records()}
        assert by_name["ggp"].path == ("oggp", "ggp")  # nested under oggp
        assert by_name["oggp"].attrs["steps"] == schedule.num_steps

    def test_disabled_run_records_nothing(self):
        schedule = ggp(paper_figure2_graph(), k=3, beta=1.0)
        assert schedule.num_steps > 0
        assert not obs.enabled()
        assert obs.metrics().snapshot() == {}


class TestNetsimTelemetry:
    def test_step_histograms(self):
        spec = NetworkSpec.paper_testbed(3, step_setup=0.01)
        traffic = np.full((spec.n1, spec.n2), 8.0)
        with obs.observed() as (registry, _tracer):
            outcome = run_redistribution(spec, traffic, "oggp", rng=0)
        hist = registry.histogram("netsim.step_duration")
        assert hist.count == outcome.num_steps
        util = registry.histogram("netsim.backbone_utilization")
        assert util.count == outcome.num_steps
        assert 0.0 < util.max <= 1.0
        assert registry.gauge("netsim.total_time").value == outcome.total_time
        assert registry.counter("netsim.runs").value == 1
