"""Tests for the Chrome trace exporter and the ASCII flame summary."""

import json

import pytest

from repro.obs.export import (
    TRACE_CATEGORY,
    chrome_trace,
    flame_summary,
    records_from_chrome,
    write_chrome_trace,
)
from repro.obs.tracer import SpanRecord, Tracer
from repro.util.errors import ConfigError


def _nested_tracer() -> Tracer:
    tr = Tracer()
    with tr.span("outer", k=3):
        with tr.span("inner"):
            pass
        with tr.span("inner"):
            pass
    return tr


class TestChromeTrace:
    def test_event_schema(self):
        doc = chrome_trace(_nested_tracer())
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert len(events) == 3
        for event in events:
            assert event["ph"] == "X"
            assert event["cat"] == TRACE_CATEGORY
            assert isinstance(event["name"], str)
            assert isinstance(event["ts"], float)
            assert isinstance(event["dur"], float)
            assert event["ts"] >= 0 and event["dur"] >= 0
            assert "pid" in event and "tid" in event
        outer = next(e for e in events if e["name"] == "outer")
        assert outer["args"] == {"k": 3}

    def test_non_json_attrs_are_repred(self):
        record = SpanRecord(
            name="s", path=("s",), start=0.0, duration=1.0,
            depth=0, thread_id=1, attrs={"obj": object()},
        )
        (event,) = chrome_trace([record])["traceEvents"]
        assert isinstance(event["args"]["obj"], str)
        json.dumps(event)  # fully serialisable

    def test_write_is_valid_json(self, tmp_path):
        path = tmp_path / "t.trace.json"
        write_chrome_trace(path, _nested_tracer())
        data = json.loads(path.read_text())
        assert len(data["traceEvents"]) == 3

    def test_round_trip_restores_nesting(self):
        tr = _nested_tracer()
        records = records_from_chrome(chrome_trace(tr))
        assert [r.path for r in records] == [r.path for r in tr.records()]
        assert records[0].depth == 0
        assert records[1].depth == 1

    def test_rejects_non_trace_document(self):
        with pytest.raises(ConfigError):
            records_from_chrome({"rows": []})


class TestRecordsFromChromeEdgeCases:
    def test_non_mapping_document_rejected(self):
        with pytest.raises(ConfigError):
            records_from_chrome([1, 2, 3])

    def test_trace_events_must_be_a_list(self):
        with pytest.raises(ConfigError):
            records_from_chrome({"traceEvents": "nope"})
        with pytest.raises(ConfigError):
            records_from_chrome({"traceEvents": 7})

    def test_empty_trace_yields_no_records(self):
        assert records_from_chrome({"traceEvents": []}) == []

    def test_non_complete_events_are_ignored(self):
        doc = {
            "traceEvents": [
                {"ph": "M", "name": "process_name"},
                {"ph": "B", "name": "open", "ts": 0.0},
                "not even an object",
            ]
        }
        assert records_from_chrome(doc) == []

    def test_complete_event_missing_keys_rejected(self):
        for broken in (
            {"ph": "X", "ts": 0.0, "dur": 1.0},  # no name
            {"ph": "X", "name": "a", "dur": 1.0},  # no ts
            {"ph": "X", "name": "a", "ts": 0.0},  # no dur
        ):
            with pytest.raises(ConfigError):
                records_from_chrome({"traceEvents": [broken]})

    def test_non_numeric_ts_dur_rejected(self):
        event = {"ph": "X", "name": "a", "ts": "soon", "dur": 1.0}
        with pytest.raises(ConfigError):
            records_from_chrome({"traceEvents": [event]})
        event = {"ph": "X", "name": "a", "ts": 0.0, "dur": None}
        with pytest.raises(ConfigError):
            records_from_chrome({"traceEvents": [event]})

    def test_zero_duration_events_round_trip(self):
        doc = {
            "traceEvents": [
                {"ph": "X", "name": "instant", "ts": 5.0, "dur": 0.0},
            ]
        }
        records = records_from_chrome(doc)
        assert len(records) == 1
        assert records[0].duration == 0.0


class TestFlameSummary:
    def test_aggregates_and_indents(self):
        out = flame_summary(_nested_tracer())
        lines = out.splitlines()
        assert lines[0].startswith("outer (x1)")
        assert lines[1].startswith("  inner (x2)")  # pooled + indented
        assert "#" in lines[0]

    def test_empty(self):
        assert flame_summary(Tracer()) == "(no spans recorded)"

    def test_all_zero_duration_spans(self):
        records = records_from_chrome(
            {
                "traceEvents": [
                    {"ph": "X", "name": "a", "ts": 0.0, "dur": 0.0},
                    {"ph": "X", "name": "b", "ts": 1.0, "dur": 0.0},
                ]
            }
        )
        out = flame_summary(records)
        assert "a (x1)" in out
        assert "b (x1)" in out  # no ZeroDivisionError scaling the bars
