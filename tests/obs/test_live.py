"""Tests for the live-telemetry layer: sources, Prometheus, the server."""

import json
import urllib.request

import pytest

from repro import obs
from repro.obs import live
from repro.obs.metrics import MetricsRegistry
from repro.obs.server import PROMETHEUS_CONTENT_TYPE, MetricsServer
from repro.util.errors import ConfigError


@pytest.fixture(autouse=True)
def _clean_sources():
    """Each test starts and ends with no registered live sources."""
    for source in live.live_sources():
        live.remove_live_source(source)
    yield
    for source in live.live_sources():
        live.remove_live_source(source)


def _get(url: str) -> tuple[int, str, str]:
    with urllib.request.urlopen(url, timeout=5) as response:
        return (
            response.status,
            response.headers.get("Content-Type", ""),
            response.read().decode(),
        )


class TestLiveSources:
    def test_add_remove_is_idempotent(self):
        def source():
            return {}

        live.add_live_source(source)
        live.add_live_source(source)
        assert live.live_sources() == [source]
        live.remove_live_source(source)
        live.remove_live_source(source)  # unknown: ignored
        assert live.live_sources() == []

    def test_merged_snapshot_folds_sources_and_registry(self):
        reg = MetricsRegistry()
        reg.counter("work.items").inc(2)

        def source():
            worker = MetricsRegistry()
            worker.counter("work.items").inc(3)
            worker.histogram("work.sizes").observe(1.5)
            return worker.snapshot(samples=True)

        live.add_live_source(source)
        with obs.observed(registry=reg):
            snapshot = live.merged_snapshot()
        assert snapshot["work.items"]["value"] == 5
        assert snapshot["work.sizes"]["count"] == 1

    def test_raising_source_is_skipped(self):
        def bad():
            raise RuntimeError("worker died")

        def good():
            reg = MetricsRegistry()
            reg.counter("ok").inc()
            return reg.snapshot(samples=True)

        live.add_live_source(bad)
        live.add_live_source(good)
        snapshot = live.merged_snapshot()
        assert snapshot["ok"]["value"] == 1


class TestRenderPrometheus:
    def test_counter_gauge_histogram_timer(self):
        reg = MetricsRegistry()
        reg.counter("schedule_cache.hits").inc(3)
        reg.gauge("queue.depth").set(7)
        h = reg.histogram("peel.size")
        h.observe(1.0)
        h.observe(3.0)
        text = live.render_prometheus(reg.snapshot())
        assert "# TYPE kpbs_schedule_cache_hits_total counter" in text
        assert "kpbs_schedule_cache_hits_total 3" in text
        assert "kpbs_queue_depth 7" in text
        assert 'kpbs_peel_size{quantile="0.5"}' in text
        assert "kpbs_peel_size_sum 4" in text
        assert "kpbs_peel_size_count 2" in text

    def test_unset_gauge_omitted(self):
        reg = MetricsRegistry()
        reg.gauge("never.set")
        assert "never_set" not in live.render_prometheus(reg.snapshot())

    def test_bounded_histogram_reports_drops(self):
        reg = MetricsRegistry()
        h = reg.histogram("ring", max_samples=2)
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        text = live.render_prometheus(reg.snapshot())
        assert "kpbs_ring_samples_dropped 1" in text
        assert "kpbs_ring_count 3" in text

    def test_phase_seconds_folds_into_timer_summary(self):
        with obs.observed() as (reg, _):
            with obs.phase("wrgp"):
                pass
            text = live.render_prometheus(reg.snapshot())
        # One summary family, with the histogram's quantiles inside it.
        assert text.count("# TYPE kpbs_wrgp_seconds summary") == 1
        assert 'kpbs_wrgp_seconds{quantile="0.5"}' in text
        assert 'kpbs_wrgp_seconds{quantile="0.95"}' in text
        assert "kpbs_wrgp_seconds_count 1" in text
        type_lines = [l for l in text.splitlines() if l.startswith("# TYPE")]
        assert len(type_lines) == len(set(type_lines))

    def test_names_sanitised(self):
        assert live.render_prometheus(
            {"weird name-1": {"type": "counter", "value": 1}}
        ).startswith("# TYPE kpbs_weird_name_1_total counter")

    def test_empty_snapshot_renders_empty(self):
        assert live.render_prometheus({}) == ""


class TestMetricsServer:
    def test_negative_port_rejected(self):
        with pytest.raises(ConfigError):
            MetricsServer(port=-1)

    def test_port_before_start_rejected(self):
        with pytest.raises(ConfigError):
            MetricsServer(port=0).port

    def test_endpoints(self):
        with obs.observed() as (reg, _):
            reg.counter("demo.count").inc(7)
            obs.emit("run.start", k=3)
            obs.emit("round.result", round=0)
            with MetricsServer(port=0) as server:
                assert server.running
                assert server.port > 0

                status, ctype, text = _get(server.url + "/metrics")
                assert status == 200
                assert ctype == PROMETHEUS_CONTENT_TYPE
                assert "kpbs_demo_count_total 7" in text

                status, ctype, body = _get(server.url + "/snapshot.json")
                assert status == 200
                assert ctype.startswith("application/json")
                assert json.loads(body)["demo.count"]["value"] == 7

                status, _, body = _get(server.url + "/events.json?n=1")
                document = json.loads(body)
                assert document["schema_version"] == 1
                assert [e["kind"] for e in document["events"]] == [
                    "round.result"
                ]

                status, _, body = _get(server.url + "/healthz")
                assert (status, body.strip()) == (200, "ok")
        assert not server.running

    def test_unknown_path_is_404(self):
        with MetricsServer(port=0) as server:
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(server.url + "/nope")
            assert err.value.code == 404

    def test_metrics_include_live_sources(self):
        def source():
            reg = MetricsRegistry()
            reg.counter("worker.items").inc(9)
            return reg.snapshot(samples=True)

        live.add_live_source(source)
        with MetricsServer(port=0) as server:
            _, _, text = _get(server.url + "/metrics")
        assert "kpbs_worker_items_total 9" in text

    def test_custom_snapshot_and_events_fns(self):
        server = MetricsServer(
            port=0,
            snapshot_fn=lambda: {"x": {"type": "counter", "value": 1}},
            events_fn=lambda n: [],
        )
        with server:
            _, _, text = _get(server.url + "/metrics")
            assert "kpbs_x_total 1" in text
            _, _, body = _get(server.url + "/events.json")
            assert json.loads(body)["events"] == []

    def test_start_and_stop_are_idempotent(self):
        server = MetricsServer(port=0).start()
        port = server.port
        assert server.start() is server
        assert server.port == port
        server.stop()
        server.stop()
        assert not server.running
