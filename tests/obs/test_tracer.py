"""Tests for the span tracer and the obs module facade."""

import threading
import time

import pytest

from repro import obs
from repro.obs.tracer import NULL_TRACER, Tracer


class TestTracer:
    def test_nesting_builds_paths_and_depths(self):
        tr = Tracer()
        with tr.span("outer"):
            with tr.span("inner"):
                pass
            with tr.span("inner2"):
                pass
        records = tr.records()
        assert [r.name for r in records] == ["outer", "inner", "inner2"]
        by_name = {r.name: r for r in records}
        assert by_name["outer"].path == ("outer",)
        assert by_name["inner"].path == ("outer", "inner")
        assert by_name["inner2"].path == ("outer", "inner2")
        assert by_name["outer"].depth == 0
        assert by_name["inner"].depth == 1
        assert by_name["outer"].end >= by_name["inner2"].end

    def test_attrs_via_set(self):
        tr = Tracer()
        with tr.span("s", a=1) as span:
            span.set(b=2)
        (record,) = tr.records()
        assert record.attrs == {"a": 1, "b": 2}

    def test_exception_closes_span(self):
        tr = Tracer()
        with pytest.raises(ValueError):
            with tr.span("boom"):
                raise ValueError("x")
        assert [r.name for r in tr.records()] == ["boom"]

    def test_threads_get_independent_stacks(self):
        tr = Tracer()

        def worker():
            with tr.span("worker"):
                time.sleep(0.001)

        with tr.span("main"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        by_name = {r.name: r for r in tr.records()}
        assert by_name["worker"].path == ("worker",)  # not nested under main
        assert by_name["worker"].thread_id != by_name["main"].thread_id

    def test_clear(self):
        tr = Tracer()
        with tr.span("s"):
            pass
        tr.clear()
        assert tr.records() == []


class TestFacade:
    def test_disabled_by_default(self):
        assert not obs.enabled()
        assert obs.tracer() is NULL_TRACER

    def test_observed_scopes_state(self):
        with obs.observed() as (registry, tracer):
            assert obs.enabled()
            assert obs.metrics() is registry
            with obs.span("s"):
                pass
        assert not obs.enabled()
        assert [r.name for r in tracer.records()] == ["s"]

    def test_observed_nests_and_restores(self):
        with obs.observed() as (outer_reg, _):
            with obs.observed() as (inner_reg, _):
                assert obs.metrics() is inner_reg
            assert obs.metrics() is outer_reg

    def test_phase_records_span_and_timer(self):
        with obs.observed() as (registry, tracer):
            with obs.phase("p", x=1):
                pass
        (record,) = tracer.records()
        assert record.name == "p"
        assert record.attrs == {"x": 1}
        assert registry.timer("p").laps == 1

    def test_disabled_span_overhead_is_small(self):
        # Not a strict benchmark — just catches the null path growing
        # real work.  10k disabled spans should be far under 50ms.
        start = time.perf_counter()
        for _ in range(10_000):
            with obs.span("hot", i=1):
                pass
        assert time.perf_counter() - start < 0.05
