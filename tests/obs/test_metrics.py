"""Tests for the metrics registry (counters, gauges, histograms, timers)."""

import csv
import io
import json
import time

import pytest

from repro.obs.metrics import (
    NULL_REGISTRY,
    Counter,
    Histogram,
    MetricsRegistry,
    TimerMetric,
)
from repro.util.errors import ConfigError


class TestCounter:
    def test_inc(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            Counter("x").inc(-1)


class TestGauge:
    def test_set_overwrites(self):
        reg = MetricsRegistry()
        g = reg.gauge("level")
        g.set(3.0)
        g.set(1.5)
        assert g.value == 1.5


class TestHistogram:
    def test_percentiles_nearest_rank(self):
        h = Histogram("h")
        for v in range(1, 101):
            h.observe(float(v))
        assert h.p50 == 50.0
        assert h.p95 == 95.0
        assert h.min == 1.0
        assert h.max == 100.0
        assert h.mean == pytest.approx(50.5)

    def test_empty_summary(self):
        assert Histogram("h").to_dict() == {"type": "histogram", "count": 0}


class TestBoundedHistogram:
    def test_default_is_exact_and_unbounded(self):
        h = Histogram("h")
        for v in range(10_000):
            h.observe(float(v))
        assert h.samples_dropped == 0
        assert "samples_dropped" not in h.to_dict()

    def test_invalid_bound_rejected(self):
        with pytest.raises(ConfigError):
            Histogram("h", max_samples=0)

    def test_ring_keeps_newest_but_aggregates_stay_exact(self):
        h = Histogram("h", max_samples=3)
        for v in (10.0, 1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        assert h.count == 5
        assert h.total == 20.0
        assert h.min == 1.0
        assert h.max == 10.0  # dropped sample still the exact max
        assert h.mean == pytest.approx(4.0)
        assert h.samples_dropped == 2
        # Percentiles come from the retained window (newest 3).
        assert h.p50 == 3.0

    def test_to_dict_reports_drops_only_when_bounded(self):
        h = Histogram("h", max_samples=2)
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        data = h.to_dict()
        assert data["samples_dropped"] == 1
        assert data["count"] == 3
        assert data["total"] == 6.0

    def test_merge_unbounded_into_bounded_folds(self):
        a = Histogram("h", max_samples=2)
        b = Histogram("h")
        for v in (1.0, 2.0, 3.0):
            b.observe(v)
        a.merge_from(b)
        assert a.count == 3
        assert a.total == 6.0
        assert a.min == 1.0 and a.max == 3.0
        assert a.samples_dropped == 1

    def test_merge_bounded_into_unbounded_keeps_drop_accounting(self):
        a = Histogram("h")
        b = Histogram("h", max_samples=2)
        for v in (1.0, 2.0, 3.0, 4.0):
            b.observe(v)
        a.merge_from(b)
        assert a.count == 4
        assert a.total == 10.0
        assert a.min == 1.0 and a.max == 4.0
        assert a.samples_dropped == 2

    def test_from_snapshot_round_trip_is_exact(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", max_samples=2)
        for v in (5.0, 1.0, 2.0):
            h.observe(v)
        back = MetricsRegistry.from_snapshot(
            json.loads(reg.to_json(samples=True))
        )
        hb = back.get("h")
        assert hb.count == 3
        assert hb.total == 8.0
        assert hb.min == 1.0
        assert hb.max == 5.0
        assert hb.samples_dropped == 1
        # And the round-trip is a fixed point for summary fields.
        d0, d1 = h.to_dict(), hb.to_dict()
        for key in ("count", "total", "mean", "min", "max", "samples_dropped"):
            assert d0[key] == d1[key]


class TestTimerMetric:
    def test_nested_with_blocks_count_once(self):
        t = TimerMetric("t")
        with t:
            with t:
                time.sleep(0.002)
            time.sleep(0.002)
        assert t.laps == 1
        assert t.elapsed >= 0.003
        assert not t.running

    def test_unbalanced_stop_raises(self):
        t = TimerMetric("t")
        with pytest.raises(ConfigError):
            t.stop()


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("a.b") is reg.counter("a.b")

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ConfigError):
            reg.gauge("x")

    def test_names_prefix_is_dotted(self):
        reg = MetricsRegistry()
        for name in ("ggp", "ggp.peels", "ggpx", "oggp.calls"):
            reg.counter(name)
        assert reg.names("ggp") == ["ggp", "ggp.peels"]
        assert reg.names() == ["ggp", "ggp.peels", "ggpx", "oggp.calls"]

    def test_json_round_trip_exact_with_samples(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(7)
        reg.gauge("g").set(2.5)
        h = reg.histogram("h")
        for v in (1.0, 2.0, 9.0):
            h.observe(v)
        t = reg.timer("t")
        with t:
            pass
        data = json.loads(reg.to_json(samples=True))
        back = MetricsRegistry.from_snapshot(data)
        assert back.snapshot(samples=True) == reg.snapshot(samples=True)

    def test_summary_round_trip_keeps_landmarks(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        for v in (1.0, 2.0, 3.0, 50.0):
            h.observe(v)
        back = MetricsRegistry.from_snapshot(json.loads(reg.to_json()))
        hb = back.get("h")
        assert hb.min == 1.0
        assert hb.max == 50.0

    def test_unknown_type_rejected(self):
        with pytest.raises(ConfigError):
            MetricsRegistry.from_snapshot({"x": {"type": "sketch"}})

    def test_merge_pools_counts(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.counter("c").inc(2)
        b.counter("c").inc(3)
        b.counter("only_b").inc()
        b.histogram("h").observe(1.0)
        a.merge(b)
        assert a.counter("c").value == 5
        assert a.counter("only_b").value == 1
        assert a.histogram("h").count == 1

    def test_merge_type_conflict_raises(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.counter("x")
        b.gauge("x").set(1.0)
        with pytest.raises(ConfigError):
            a.merge(b)

    def test_csv_has_one_row_per_metric(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.histogram("h").observe(2.0)
        rows = list(csv.DictReader(io.StringIO(reg.to_csv())))
        assert [r["name"] for r in rows] == ["c", "h"]
        assert rows[0]["type"] == "counter"
        assert rows[0]["value"] == "3"
        assert rows[1]["p50"] == "2.0"


class TestNullRegistry:
    def test_all_operations_are_noops(self):
        NULL_REGISTRY.counter("c").inc(5)
        NULL_REGISTRY.gauge("g").set(1.0)
        NULL_REGISTRY.histogram("h").observe(2.0)
        with NULL_REGISTRY.timer("t"):
            pass
        assert NULL_REGISTRY.snapshot() == {}
