"""End-to-end CLI runs in a real subprocess (entry-point wiring)."""

import json
import subprocess
import sys

import pytest


def kpbs(*args: str, timeout: float = 300.0) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestCliSubprocess:
    def test_demo(self):
        result = kpbs("demo")
        assert result.returncode == 0
        assert "OGGP" in result.stdout

    def test_schedule_verify_roundtrip(self, tmp_path):
        matrix = tmp_path / "m.json"
        matrix.write_text(json.dumps([[12.0, 3.0], [0.0, 9.0]]))
        schedule = tmp_path / "s.json"
        result = kpbs(
            "schedule", "--input", str(matrix), "--k", "2", "--beta", "0.5",
            "--output", str(schedule), "--gantt", "--relax",
        )
        assert result.returncode == 0
        assert "relaxed" in result.stdout
        result = kpbs("verify", "--matrix", str(matrix),
                      "--schedule", str(schedule))
        assert result.returncode == 0
        assert "OK" in result.stdout

    def test_unknown_subcommand_fails(self):
        result = kpbs("frobnicate")
        assert result.returncode != 0

    @pytest.mark.slow
    def test_run_experiment_with_csv(self, tmp_path):
        csv = tmp_path / "out.csv"
        result = kpbs("run", "fig7", "--draws", "5", "--csv", str(csv))
        assert result.returncode == 0
        assert csv.exists()
        header = csv.read_text().splitlines()[0]
        assert header == "k,ggp_avg,ggp_max,oggp_avg,oggp_max"
