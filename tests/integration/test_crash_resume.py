"""Crash-kill harness: SIGKILL a checkpointed run, resume, compare bytes.

The acceptance test for durable checkpointing (docs/robustness.md):
a ``kpbs transfer`` process is SIGKILLed at randomized points mid-run
— no atexit handler, no flush, the kernel just takes it — then ``kpbs
resume`` finishes the run in a fresh process.  The final delivered
matrix (summarized by the CLI's SHA-256 over every edge's delivered
bytes) must be bit-identical to an uninterrupted run's, for every kill
point.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

#: Big enough that the token-bucket shaped NICs stretch the run to
#: several wall-clock seconds (the 256 KiB burst allowance makes small
#: payloads finish instantly), faulty enough that it takes multiple
#: recovery rounds — so kill points land mid-flight, both inside the
#: first round and after journaled recovery rounds.
TRANSFER_ARGS = [
    "--seed", "11", "--n1", "2", "--n2", "2", "--k", "2",
    "--payload-kb", "512", "--nic-mbit", "1.5", "--backbone-mbit", "4",
    "--faults", "seed=9,transfer=0.6", "--retries", "10",
    "--fsync", "round", "--snapshot-every", "2",
]


def kpbs(*args: str, timeout: float = 300.0) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, timeout=timeout,
    )


def digest_of(stdout: str) -> str:
    for line in stdout.splitlines():
        if line.startswith("digest:"):
            return line.split()[-1]
    raise AssertionError(f"no digest line in output:\n{stdout}")


def finish(ckdir: str) -> subprocess.CompletedProcess:
    """Drive a (possibly) killed run to completion, as an operator would.

    A non-empty journal on disk means durable state survived: resume
    it.  Otherwise the kill landed before the first durable byte
    (interpreter startup, scheduling) — nothing to resume, start the
    transfer over in the same directory.
    """
    journal = os.path.join(ckdir, "journal.kpbj")
    if os.path.exists(journal) and os.path.getsize(journal) > 0:
        return kpbs("resume", "--checkpoint-dir", ckdir)
    return kpbs("transfer", "--checkpoint-dir", ckdir, *TRANSFER_ARGS)


@pytest.fixture(scope="module")
def reference_digest():
    """Digest of the uninterrupted run (same seed, faults, rates)."""
    result = kpbs("transfer", *TRANSFER_ARGS)
    assert result.returncode == 0, result.stderr
    return digest_of(result.stdout)


@pytest.mark.slow
class TestCrashResume:
    #: Seconds into the run at which the kernel pulls the plug.  The
    #: points are spread across the run's phases: scheduling/first
    #: round, mid-round, and deep into recovery rounds.
    @pytest.mark.parametrize("kill_after", [0.5, 2.0, 4.2])
    def test_sigkill_then_resume_is_bit_identical(
        self, kill_after, tmp_path, reference_digest
    ):
        ckdir = str(tmp_path / "ck")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "transfer",
             "--checkpoint-dir", ckdir, *TRANSFER_ARGS],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        )
        time.sleep(kill_after)
        if proc.poll() is None:
            os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=60)
        killed = proc.returncode == -signal.SIGKILL
        # Whether we caught it mid-flight or it finished first, driving
        # the run on must converge on the uninterrupted run's bytes.
        result = finish(ckdir)
        assert result.returncode == 0, result.stderr
        assert "complete:  True" in result.stdout
        assert digest_of(result.stdout) == reference_digest, (
            f"kill at {kill_after}s (killed={killed}) diverged from the "
            "uninterrupted run"
        )
        # Resume of the now-complete checkpoint stays stable.
        again = kpbs("resume", "--checkpoint-dir", ckdir)
        assert again.returncode == 0, again.stderr
        assert digest_of(again.stdout) == reference_digest

    def test_kill_during_resume_then_resume_again(
        self, tmp_path, reference_digest
    ):
        """Crashing the *resume* process is just another crash."""
        ckdir = str(tmp_path / "ck")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "transfer",
             "--checkpoint-dir", ckdir, *TRANSFER_ARGS],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        )
        time.sleep(4.0)
        if proc.poll() is None:
            os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=60)
        resume = subprocess.Popen(
            [sys.executable, "-m", "repro", "resume",
             "--checkpoint-dir", ckdir],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        )
        time.sleep(1.0)
        if resume.poll() is None:
            os.kill(resume.pid, signal.SIGKILL)
        resume.wait(timeout=60)
        final = finish(ckdir)
        assert final.returncode == 0, final.stderr
        assert digest_of(final.stdout) == reference_digest
