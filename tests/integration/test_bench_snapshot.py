"""The machine-readable benchmark emitter (benchmarks/perf_snapshot.py)."""

import json

from benchmarks.perf_snapshot import ALGORITHMS, main, snapshot_rows


class TestPerfSnapshot:
    def test_rows_cover_algorithm_grid(self):
        rows = snapshot_rows(sizes=(4,), repeats=1)
        assert {r["algorithm"] for r in rows} == set(ALGORITHMS)
        for row in rows:
            assert row["wall_time_mean_s"] > 0
            assert row["evaluation_ratio_mean"] >= 1.0

    def test_main_writes_json(self, tmp_path, capsys):
        out = tmp_path / "BENCH_algorithms.json"
        assert main(["--sizes", "4", "--repeats", "1", "--out", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert doc["benchmark"] == "algorithms"
        assert len(doc["rows"]) == len(ALGORITHMS)
