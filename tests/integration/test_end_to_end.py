"""Cross-module integration tests.

These exercise the full pipeline — pattern generation → scheduling →
validation → simulated execution / byte movement — and cross-validate
the independent implementations against each other.
"""

import numpy as np
import pytest

from repro.core.bounds import lower_bound
from repro.core.exact import exact_cost
from repro.core.ggp import ggp
from repro.core.oggp import oggp
from repro.graph.generators import from_traffic_matrix, random_bipartite
from repro.netsim.runner import run_redistribution, uniform_traffic
from repro.netsim.stepwise import simulate_schedule
from repro.netsim.tcp import TcpParams
from repro.netsim.topology import NetworkSpec
from repro.patterns import block_cyclic_matrix, zipf_matrix


class TestPatternToSchedulePipeline:
    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_zipf_pattern(self, k):
        traffic = zipf_matrix(3, 6, 5, total=300.0)
        graph = from_traffic_matrix(traffic, speed=10.0)
        for alg in (ggp, oggp):
            s = alg(graph, k=k, beta=0.1)
            s.validate(graph)
            assert s.cost <= 2 * lower_bound(graph, k, 0.1) + 1e-6

    def test_block_cyclic_pattern(self):
        traffic = block_cyclic_matrix(600, 4, 6, 5, 4)
        graph = from_traffic_matrix(traffic)
        s = oggp(graph, k=4, beta=2.0)
        s.validate(graph)
        # Total shipped equals total elements.
        assert s.total_volume == pytest.approx(600.0)


class TestScheduleToSimulationPipeline:
    def test_simulated_time_equals_cost_model(self):
        """The DES executor and the analytic cost model must agree."""
        spec = NetworkSpec.paper_testbed(4, step_setup=0.02)
        traffic = uniform_traffic(8, 10, 10, 1.0, 2.0)
        graph = from_traffic_matrix(traffic, speed=spec.flow_rate)
        for alg in (ggp, oggp):
            sched = alg(graph, k=spec.k, beta=spec.step_setup)
            result = simulate_schedule(
                spec, sched, volume_scale=spec.flow_rate
            )
            assert result.total_time == pytest.approx(sched.cost, rel=1e-9)

    def test_schedule_cost_vs_lower_bound_vs_simulation(self):
        spec = NetworkSpec.paper_testbed(3, step_setup=0.01)
        traffic = uniform_traffic(4, 10, 10, 2.0, 5.0)
        graph = from_traffic_matrix(traffic, speed=spec.flow_rate)
        bound = lower_bound(graph, spec.k, spec.step_setup)
        out = run_redistribution(spec, traffic, "oggp")
        assert bound <= out.total_time + 1e-9
        assert out.total_time <= 2 * bound + 1e-6


class TestPaperHeadlineClaims:
    """The claims of the paper's conclusion, end to end."""

    def test_scheduling_beats_bruteforce_and_gain_grows_with_k(self):
        params = TcpParams(dt=0.005)
        gains = []
        for k in (3, 7):
            spec = NetworkSpec.paper_testbed(k, step_setup=0.01)
            traffic = uniform_traffic(42, 10, 10, 4.0, 12.0)
            brute = run_redistribution(
                spec, traffic, "bruteforce", rng=1, tcp_params=params
            ).total_time
            sched = run_redistribution(spec, traffic, "oggp").total_time
            gains.append(1.0 - sched / brute)
        assert gains[0] > 0.0, "OGGP must beat brute force at k=3"
        assert gains[1] > gains[0], "gain must grow with k"

    def test_oggp_close_to_optimal_for_long_communications(self):
        # Paper Fig 8: with weights far above beta the ratio is ~1.
        for seed in range(5):
            g = random_bipartite(seed, max_side=8, max_edges=30,
                                 weight_low=500, weight_high=10_000)
            bound = lower_bound(g, 4, 1.0)
            assert oggp(g, 4, 1.0).cost / bound < 1.01

    def test_heuristics_within_two_of_exact_optimum(self):
        for seed in range(10):
            g = random_bipartite(seed, max_side=3, max_edges=4,
                                 weight_low=1, weight_high=4)
            opt = exact_cost(g, k=2, beta=1.0)
            assert oggp(g, 2, 1.0).cost <= 2 * opt + 1e-9
            assert ggp(g, 2, 1.0).cost <= 2 * opt + 1e-9


class TestSerializationAcrossModules:
    def test_schedule_roundtrip_preserves_simulated_time(self):
        from repro.core.schedule import Schedule

        spec = NetworkSpec.paper_testbed(3, step_setup=0.05)
        traffic = uniform_traffic(2, 10, 10, 1.0, 2.0)
        graph = from_traffic_matrix(traffic, speed=spec.flow_rate)
        sched = oggp(graph, k=spec.k, beta=spec.step_setup)
        restored = Schedule.from_json(sched.to_json())
        a = simulate_schedule(spec, sched, volume_scale=spec.flow_rate)
        b = simulate_schedule(spec, restored, volume_scale=spec.flow_rate)
        assert a.total_time == b.total_time
