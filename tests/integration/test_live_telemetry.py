"""Acceptance tests for the live-telemetry subsystem.

The PR contract: a parallel batch run with streaming telemetry and a
metrics endpoint must (a) expose live worker-sourced counters *while*
the batch is running, (b) end with merged totals bit-identical to a
non-telemetry run, (c) leave a schema-valid JSONL event log behind,
and (d) feed a ``kpbs top`` dashboard.
"""

import json
import threading
import time
import urllib.request

import pytest

from repro import obs
from repro.cli.top import render_dashboard
from repro.graph.generators import random_bipartite
from repro.obs.events import load_events
from repro.obs.server import MetricsServer
from repro.parallel.batch import make_schedule_pool, schedule_batch

JOBS = 4
GRAPHS = 24
MAX_SIDE = 50


def _batch_graphs():
    return [
        random_bipartite(seed, max_side=MAX_SIDE, max_edges=120)
        for seed in range(GRAPHS)
    ]


def _comparable(snapshot: dict) -> dict:
    """Snapshot minus the run-order-dependent metrics.

    Timers and phase-seconds rings hold wall-clock values, and gauges
    are last-write-wins across worker merge order — all three differ
    between *any* two runs, telemetry or not.  Everything else —
    counters, histogram counts and sample multisets — must be
    bit-identical across runs.  Histogram ``total``/``mean`` are float
    sums accumulated in merge order, and float addition is not
    associative, so streamed (incremental fold) and non-streamed
    (shutdown fold) runs can disagree in the last ulp — compare those
    at 12 significant digits instead of bit-for-bit.
    """
    out = {}
    for name, entry in snapshot.items():
        if entry.get("type") in ("timer", "gauge") or name.endswith(".seconds"):
            continue
        entry = dict(entry)
        if "samples" in entry:
            entry["samples"] = sorted(entry["samples"])
        for key in ("total", "mean"):
            if isinstance(entry.get(key), float):
                entry[key] = float(f"{entry[key]:.12g}")
        out[name] = entry
    return out


class TestLiveBatchRun:
    def test_mid_run_metrics_and_final_bit_identity(self, tmp_path):
        graphs = _batch_graphs()
        events_path = tmp_path / "events.jsonl"

        # --- telemetry run: jobs=4, eager streaming, live endpoint ---
        from repro.obs.events import EventLog

        mid_run: list[str] = []
        stop = threading.Event()
        with obs.observed(events=EventLog(path=events_path)) as (reg, _):
            obs.emit("run.start", engine="batch", k=4, graphs=len(graphs))
            with MetricsServer(port=0) as server:
                url = server.url

                def poll():
                    while not stop.is_set():
                        try:
                            with urllib.request.urlopen(
                                url + "/metrics", timeout=2
                            ) as response:
                                mid_run.append(response.read().decode())
                        except OSError:  # pragma: no cover - race at teardown
                            pass
                        time.sleep(0.02)

                poller = threading.Thread(target=poll, daemon=True)
                poller.start()
                with make_schedule_pool(JOBS, stream_items=1) as pool:
                    schedules = schedule_batch(
                        graphs, "oggp", k=4, beta=0.5, cache=None, pool=pool,
                    )
                stop.set()
                poller.join(timeout=5)
            obs.emit("run.complete", engine="batch", complete=True)
            streamed_snapshot = reg.snapshot(samples=True)

        assert len(schedules) == len(graphs)
        for graph, schedule in zip(graphs, schedules):
            schedule.validate(graph)

        # (a) some mid-run scrape saw a worker-sourced counter: the
        # peel counter only ever increments inside worker processes
        # here, so its presence proves streaming beat the final merge.
        assert mid_run, "poller never scraped the endpoint"
        assert any(
            "kpbs_wrgp_peels_total" in body and "kpbs_wrgp_peels_total 0" not in body
            for body in mid_run
        ), "no scrape saw live worker-sourced counters"

        # --- reference run: telemetry machinery off ---
        with obs.observed() as (reference_reg, _):
            with make_schedule_pool(
                JOBS, stream_items=None, stream_seconds=None
            ) as pool:
                reference = schedule_batch(
                    graphs, "oggp", k=4, beta=0.5, cache=None, pool=pool,
                )
            reference_snapshot = reference_reg.snapshot(samples=True)

        # (b) schedules and merged totals are bit-identical.
        assert [s.to_dict() for s in schedules] == [
            s.to_dict() for s in reference
        ]
        assert _comparable(streamed_snapshot) == _comparable(
            reference_snapshot
        )

        # (c) the JSONL event log replays schema-valid, in order.
        events = load_events(events_path)
        kinds = [e.kind for e in events]
        assert kinds[0] == "run.start"
        assert kinds[-1] == "run.complete"
        assert [e.seq for e in events] == sorted(e.seq for e in events)

    def test_top_dashboard_renders_against_live_endpoint(self):
        with obs.observed() as (reg, _):
            with make_schedule_pool(2, stream_items=1) as pool:
                schedule_batch(
                    _batch_graphs()[:6], "oggp", k=4, beta=0.5,
                    cache=None, pool=pool,
                )
            obs.emit("run.complete", complete=True)
            with MetricsServer(port=0) as server:
                url = server.url
                with urllib.request.urlopen(
                    url + "/snapshot.json", timeout=5
                ) as response:
                    snapshot = json.loads(response.read())
                with urllib.request.urlopen(
                    url + "/events.json?n=4", timeout=5
                ) as response:
                    document = json.loads(response.read())
        frame = render_dashboard(snapshot, document["events"], url=url)
        assert "kpbs top" in frame
        assert "items done: 6" in frame
        assert "oggp" in frame  # per-phase table includes worker phases
        assert "run.complete" in frame
