"""Composition tests: chaining optimisation passes keeps everything valid."""

import pytest
from hypothesis import given, settings

from repro.core.bounds import lower_bound
from repro.core.oggp import oggp
from repro.core.postopt import merge_steps
from repro.core.relax import relax_schedule
from repro.core.stepmin import step_minimal_schedule
from repro.core.verify import verify_solution
from repro.netsim.async_exec import simulate_relaxed
from tests.conftest import bipartite_graphs, ks


class TestPassComposition:
    @given(bipartite_graphs(), ks)
    @settings(max_examples=50, deadline=None)
    def test_oggp_merge_relax_chain(self, g, k):
        """oggp -> merge_steps -> relax_schedule, all valid, never worse."""
        beta = 1.0
        base = oggp(g, k=k, beta=beta)
        merged = merge_steps(base)
        assert verify_solution(g, merged).ok
        relaxed = relax_schedule(merged)
        relaxed.validate(g)
        assert merged.cost <= base.cost + 1e-9
        assert merged.cost <= 2 * lower_bound(g, k, beta) + 1e-6

    @given(bipartite_graphs(), ks)
    @settings(max_examples=40, deadline=None)
    def test_stepmin_merge_relax_chain(self, g, k):
        base = step_minimal_schedule(g, k, beta=2.0)
        merged = merge_steps(base)
        assert verify_solution(g, merged).ok
        relaxed = relax_schedule(merged)
        relaxed.validate(g)
        executed = simulate_relaxed(merged)
        executed.validate(g)

    @given(bipartite_graphs(max_side=5, max_edges=10))
    @settings(max_examples=30, deadline=None)
    def test_merge_is_idempotent_on_structure(self, g):
        once = merge_steps(oggp(g, k=3, beta=1.0))
        twice = merge_steps(once)
        assert twice.num_steps == once.num_steps
        assert twice.cost == pytest.approx(once.cost)

    @given(bipartite_graphs(max_side=5, max_edges=10), ks)
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_then_passes(self, g, k):
        """Serialisation composes with the optimisation passes."""
        from repro.core.schedule import Schedule

        base = oggp(g, k=k, beta=0.5)
        restored = Schedule.from_json(base.to_json())
        merged = merge_steps(restored)
        assert verify_solution(g, merged).ok
        assert merged.cost <= base.cost + 1e-9
