"""The paper's §2.1 asymmetric platform, exercised end to end.

n1 = 200 senders at 10 Mbit/s, n2 = 100 receivers at 100 Mbit/s,
backbone 1 Gbit/s — the paper derives k = 100 and per-flow speed
t = 10 Mbit/s.  This suite schedules and simulates on that platform.
"""

import numpy as np
import pytest

from repro.core.bounds import lower_bound
from repro.core.oggp import oggp
from repro.graph.generators import from_traffic_matrix
from repro.netsim.stepwise import simulate_schedule
from repro.netsim.topology import NetworkSpec
from repro.patterns.matrices import sparse_matrix


@pytest.fixture(scope="module")
def platform() -> NetworkSpec:
    return NetworkSpec(n1=200, n2=100, nic_rate1=10.0, nic_rate2=100.0,
                       backbone_rate=1000.0, step_setup=0.02)


class TestAsymmetricPlatform:
    def test_derived_parameters(self, platform):
        assert platform.k == 100
        assert platform.flow_rate == 10.0

    def test_schedule_and_simulate(self, platform):
        # Sparse pattern: each sender talks to a couple of receivers.
        traffic = sparse_matrix(11, platform.n1, platform.n2,
                                density=0.012, low=2.0, high=12.0)
        graph = from_traffic_matrix(traffic, speed=platform.flow_rate)
        schedule = oggp(graph, k=platform.k, beta=platform.step_setup)
        schedule.validate(graph)
        assert schedule.max_step_size <= platform.k
        bound = lower_bound(graph, platform.k, platform.step_setup)
        assert schedule.cost <= 2 * bound + 1e-6
        result = simulate_schedule(
            platform, schedule, volume_scale=platform.flow_rate
        )
        assert result.total_time == pytest.approx(schedule.cost, rel=1e-9)

    def test_receiver_side_one_port_respected(self, platform):
        # Dense columns stress the receivers (2 senders per receiver).
        traffic = np.zeros((platform.n1, platform.n2))
        for i in range(platform.n1):
            traffic[i, i % platform.n2] = 5.0
        graph = from_traffic_matrix(traffic, speed=platform.flow_rate)
        schedule = oggp(graph, k=platform.k, beta=platform.step_setup)
        schedule.validate(graph)
        for step in schedule.steps:
            receivers = [t.right for t in step.transfers]
            assert len(set(receivers)) == len(receivers)
