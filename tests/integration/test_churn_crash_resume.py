"""Crash-kill harness for live-churn runs, plus the repair-speed gate.

The acceptance criteria for splice rescheduling (docs/robustness.md):

- SIGKILLing a checkpointed ``kpbs watch`` run mid-churn and resuming
  it in a fresh process converges on the *same* delivered-bytes digest
  as an uninterrupted run — churn draws, fault draws and splice
  repairs all replay bit-identically from the journal.
- At a 100x100 platform the spliced repair is at least 3x faster than
  rescheduling the whole pending remainder, with an evaluation ratio
  within 5% of the from-scratch schedule's.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

#: A run long enough (tens of segments, 50x50 cells) that kill points
#: land mid-flight: after churn events, between splices, inside faulted
#: segments.
WATCH_ARGS = [
    "--seed", "11", "--n1", "20", "--n2", "20", "--k", "3", "--max-mb", "40",
    "--churn", "seed=11,inject=2,remove=1,resize=2,events=4",
    # The retry budget counts faulted segments across the whole run; at
    # this fault rate most segments lose at least one transfer, so the
    # budget just needs to exceed the round count.
    "--faults", "seed=9,transfer=0.2", "--retries", "1000",
    "--fsync", "round", "--snapshot-every", "2",
]


def kpbs(*args: str, timeout: float = 300.0) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, timeout=timeout,
    )


def digest_of(stdout: str) -> str:
    for line in stdout.splitlines():
        if line.startswith("digest:"):
            return line.split()[-1]
    raise AssertionError(f"no digest line in output:\n{stdout}")


def finish(ckdir: str) -> subprocess.CompletedProcess:
    """Drive a (possibly) killed watch run to completion."""
    journal = os.path.join(ckdir, "journal.kpbj")
    if os.path.exists(journal) and os.path.getsize(journal) > 0:
        return kpbs("resume", "--checkpoint-dir", ckdir)
    return kpbs("watch", "--checkpoint-dir", ckdir, *WATCH_ARGS)


@pytest.fixture(scope="module")
def reference():
    """(digest, stdout) of the uninterrupted churned run."""
    result = kpbs("watch", *WATCH_ARGS)
    assert result.returncode == 0, result.stderr
    return digest_of(result.stdout), result.stdout


@pytest.mark.slow
class TestChurnCrashResume:
    def test_reference_run_actually_churns_and_splices(self, reference):
        _, stdout = reference
        fields = {}
        for line in stdout.splitlines():
            key, sep, value = line.partition(":")
            if sep:
                fields[key.strip()] = value.strip()
        assert fields["complete"] == "True"
        assert int(fields["churn"].split()[0]) >= 1
        assert int(fields["splices"]) >= 1
        # Every executed schedule was verified (build + splices + fallbacks).
        assert int(fields["verified"]) >= 1 + int(fields["splices"])

    @pytest.mark.parametrize("kill_after", [0.4, 0.9])
    def test_sigkill_then_resume_is_bit_identical(
        self, kill_after, tmp_path, reference
    ):
        reference_digest, _ = reference
        ckdir = str(tmp_path / "ck")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "watch",
             "--checkpoint-dir", ckdir, *WATCH_ARGS],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        )
        time.sleep(kill_after)
        if proc.poll() is None:
            os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=60)
        killed = proc.returncode == -signal.SIGKILL
        result = finish(ckdir)
        assert result.returncode == 0, result.stderr
        assert "complete:  True" in result.stdout
        assert digest_of(result.stdout) == reference_digest, (
            f"kill at {kill_after}s (killed={killed}) diverged from the "
            "uninterrupted churned run"
        )
        # Resume of the now-complete checkpoint stays stable.
        again = kpbs("resume", "--checkpoint-dir", ckdir)
        assert again.returncode == 0, again.stderr
        assert digest_of(again.stdout) == reference_digest


@pytest.mark.slow
class TestRepairSpeedGate:
    def test_splice_beats_full_reschedule_at_side_100(self):
        from repro.experiments.churn import churn_repair_case

        case = churn_repair_case(100, seed=7301, k=4, beta=0.5)
        assert case["mode"] == "splice"
        assert case["speedup"] >= 3.0, case
        gap = case["splice_ratio"] / case["full_ratio"] - 1.0
        assert gap <= 0.05, case
