"""``kpbs serve`` acceptance: SIGKILL mid-load resumes bit-identically,
and sustained overload sheds with structured RETRY_AFTER — never a hang.

The daemon analogue of test_crash_resume.py: instead of killing one
``kpbs transfer`` process we kill the whole daemon while >= 2 journaled
transfers are in flight, restart it on the same state directory, and
require every run's delivered-bytes digest to match an uninterrupted
run of the same parameters.
"""

import os
import queue
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.serve import ServeClient, ServeError
from repro.serve.runs import RunRegistry

#: Token-bucket shaped NICs stretch each run to a few wall-clock
#: seconds (512 KiB per edge at 2 Mbit/s), leaving a wide window in
#: which SIGKILL lands mid-transfer.
SLOW_PARAMS = {
    "n1": 2, "n2": 2, "payload_kb": 512,
    "nic_mbit": 2.0, "backbone_mbit": 5.0,
}
RUNS = {"run-a": {"seed": 7, **SLOW_PARAMS}, "run-b": {"seed": 8, **SLOW_PARAMS}}


class Daemon:
    """A ``kpbs serve`` subprocess with line-oriented stdout tapping."""

    def __init__(self, state_dir, *extra: str):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", env.get("PYTHONPATH", "")) if p
        )
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--state-dir", str(state_dir), "--metrics-port", "-1",
             "--max-transfers", "2", *extra],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True, env=env,
        )
        self.lines: queue.Queue[str] = queue.Queue()
        threading.Thread(target=self._pump, daemon=True).start()
        self.address = self.expect("serving kpbr on ").split()[-1]

    def _pump(self) -> None:
        for line in self.proc.stdout:
            self.lines.put(line)

    def expect(self, prefix: str, timeout: float = 60.0) -> str:
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0 or self.proc.poll() is not None:
                raise AssertionError(
                    f"daemon never printed {prefix!r}; "
                    f"stderr:\n{self.proc.stderr.read()}"
                )
            try:
                line = self.lines.get(timeout=min(remaining, 1.0))
            except queue.Empty:
                continue
            if line.startswith(prefix):
                return line.strip()

    def sigkill(self) -> None:
        os.kill(self.proc.pid, signal.SIGKILL)
        self.proc.wait(timeout=60)

    def stop(self) -> None:
        if self.proc.poll() is None:
            self.proc.terminate()
            try:
                self.proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait(timeout=30)


@pytest.fixture(scope="module")
def reference_digests(tmp_path_factory):
    """Digests of uninterrupted runs of the same parameters."""
    registry = RunRegistry(tmp_path_factory.mktemp("ref"))
    return {
        run_id: registry.execute(run_id, params)["digest"]
        for run_id, params in RUNS.items()
    }


@pytest.mark.slow
class TestServeCrashResume:
    def test_sigkill_with_two_inflight_transfers_resumes_bit_identical(
        self, tmp_path, reference_digests
    ):
        state_dir = tmp_path / "state"
        daemon = Daemon(state_dir)
        try:
            # Two tenants submit journaled transfers; both block on the
            # shaped NICs, so the daemon dies with both mid-flight.
            def submit(run_id):
                try:
                    with ServeClient(daemon.address, tenant=run_id) as c:
                        c.transfer(
                            run_id, RUNS[run_id],
                            deadline_s=120.0, max_attempts=1,
                        )
                except ServeError:
                    pass  # expected: the daemon is about to vanish

            threads = [
                threading.Thread(target=submit, args=(rid,)) for rid in RUNS
            ]
            for t in threads:
                t.start()
            # Wait for both runs to be durably admitted (run.json down,
            # journal growing), then pull the plug mid-transfer.
            deadline = time.monotonic() + 30.0
            runs_dir = state_dir / "runs"
            while time.monotonic() < deadline:
                journals = [
                    runs_dir / rid / "journal.kpbj" for rid in RUNS
                ]
                if all(j.is_file() and j.stat().st_size > 0 for j in journals):
                    break
                time.sleep(0.05)
            else:
                raise AssertionError("transfers never started journalling")
            time.sleep(1.0)  # let real bytes move before the kill
            daemon.sigkill()
            for t in threads:
                t.join(timeout=60)
        finally:
            daemon.stop()

        incomplete = [
            rid for rid in RUNS
            if not (runs_dir / rid / "result.json").is_file()
        ]
        assert len(incomplete) >= 1, "kill landed after both runs finished"

        # Restart on the same state directory: the daemon must finish
        # the orphans before reporting ready, bit-identically.
        daemon = Daemon(state_dir)
        try:
            ready = daemon.expect("ready: ", timeout=120.0)
            assert f"{len(incomplete)} run(s) resumed" in ready
            with ServeClient(daemon.address) as c:
                for run_id, want in reference_digests.items():
                    doc = c.run_status(run_id)
                    assert doc["state"] == "complete", doc
                    assert doc["digest"] == want, (
                        f"{run_id} diverged from the uninterrupted run"
                    )
                # The resumed daemon is a fully live one.
                assert c.ping()["status"] == "ok"
        finally:
            daemon.stop()


@pytest.mark.slow
class TestServeOverload:
    def test_5x_overload_sheds_structurally_and_never_hangs(self):
        from repro.serve import BackgroundServer, ServeConfig

        # Queue capacity 2, serial batches of 1: a 12-request burst is
        # far past 5x what the daemon admits at once.
        config = ServeConfig(
            metrics_port=None, max_queue=2, max_batch=1,
            default_deadline=30.0,
        )
        import numpy as np

        matrix = np.random.default_rng(0).uniform(1, 9, (40, 40)).tolist()
        statuses, durations, failures = [], [], []

        def fire(idx):
            try:
                with ServeClient(bg.address, tenant=f"t{idx % 4}") as c:
                    started = time.monotonic()
                    doc = c.request(
                        {"op": "schedule", "matrix": matrix, "k": 3,
                         "deadline_s": 30.0}
                    )
                    durations.append(time.monotonic() - started)
                    statuses.append(doc)
            except Exception as exc:  # pragma: no cover - failure detail
                failures.append(exc)

        with BackgroundServer(config) as bg:
            threads = [
                threading.Thread(target=fire, args=(i,)) for i in range(12)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            assert not failures
            assert len(statuses) == 12
            shed = [d for d in statuses if d["status"] == "retry"]
            assert shed, "overload never produced a RETRY_AFTER"
            for doc in shed:
                assert doc["code"] == "RETRY_AFTER"
                assert doc["retry_after"] > 0.0
                assert doc["reason"]
            # Nothing waited past its deadline, shed answers were fast.
            assert max(durations) < 35.0
            # No unhandled daemon exceptions: still serving, queue sane.
            with ServeClient(bg.address) as c:
                assert c.ping()["status"] == "ok"
                assert c.status()["queue_depth"] == 0
