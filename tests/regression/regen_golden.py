"""Regenerate the golden corpus after an intentional behaviour change.

Run:  python tests/regression/regen_golden.py
"""

import json
from pathlib import Path

from repro.core.bounds import lower_bound
from repro.core.ggp import ggp
from repro.core.oggp import oggp
from repro.graph.generators import random_bipartite


def main() -> None:
    corpus = []
    for seed in range(12):
        g = random_bipartite(seed, max_side=8, max_edges=30)
        for k in (1, 3, 6):
            for beta in (0.0, 1.0, 4.0):
                corpus.append({
                    "seed": seed, "k": k, "beta": beta,
                    "lb": lower_bound(g, k, beta),
                    "ggp_cost": ggp(g, k, beta).cost,
                    "ggp_steps": ggp(g, k, beta).num_steps,
                    "oggp_cost": oggp(g, k, beta).cost,
                    "oggp_steps": oggp(g, k, beta).num_steps,
                })
    out = Path(__file__).with_name("golden_costs.json")
    out.write_text(json.dumps(corpus, indent=1))
    print(f"wrote {len(corpus)} entries to {out}")


if __name__ == "__main__":
    main()
