"""Golden regression tests: pinned costs for fixed seeds.

These freeze the exact behaviour of the schedulers on a fixed corpus of
instances.  If a change moves any number here, it changed scheduling
behaviour — which may be fine (an improvement) but must be a conscious
decision: regenerate the corpus with
``python tests/regression/regen_golden.py`` and explain the diff.
"""

import json
from pathlib import Path

import pytest

from repro.core.bounds import lower_bound
from repro.core.ggp import ggp
from repro.core.oggp import oggp
from repro.graph.generators import random_bipartite

GOLDEN = Path(__file__).with_name("golden_costs.json")


def load_corpus():
    return json.loads(GOLDEN.read_text())


class TestGoldenCosts:
    @pytest.fixture(scope="class")
    def corpus(self):
        return load_corpus()

    def test_corpus_is_nonempty(self, corpus):
        assert len(corpus) >= 100

    def test_all_entries_reproduce(self, corpus):
        graphs = {}
        mismatches = []
        for entry in corpus:
            seed = entry["seed"]
            if seed not in graphs:
                graphs[seed] = random_bipartite(seed, max_side=8, max_edges=30)
            g = graphs[seed]
            k, beta = entry["k"], entry["beta"]
            checks = {
                "lb": lower_bound(g, k, beta),
                "ggp_cost": ggp(g, k, beta).cost,
                "ggp_steps": ggp(g, k, beta).num_steps,
                "oggp_cost": oggp(g, k, beta).cost,
                "oggp_steps": oggp(g, k, beta).num_steps,
            }
            for key, value in checks.items():
                if value != pytest.approx(entry[key], rel=1e-12):
                    mismatches.append((seed, k, beta, key, entry[key], value))
        assert not mismatches, mismatches[:10]

    def test_golden_internal_consistency(self, corpus):
        for entry in corpus:
            assert entry["lb"] <= entry["ggp_cost"] + 1e-9
            assert entry["lb"] <= entry["oggp_cost"] + 1e-9
            assert entry["ggp_cost"] <= 2 * entry["lb"] + 1e-6
            assert entry["oggp_cost"] <= 2 * entry["lb"] + 1e-6
