"""Cross-process checkpoint locking: one writer per run directory.

The in-process lock tests in test_journal.py cover the error message;
these cover what flock actually buys us — a *second OS process* opening
the same run directory fails fast, and the lock evaporates both on a
clean close and when the holder is SIGKILLed (no stale-lockfile
babysitting after a crash).
"""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.resilience.journal import CheckpointStore, RunMeta
from repro.util.errors import ConfigError

#: Child holds a CheckpointStore open on argv[1] until stdin closes
#: (clean path) or it is killed (crash path).
HOLDER_SCRIPT = """
import sys
from repro.resilience.journal import CheckpointStore, RunMeta

store = CheckpointStore(sys.argv[1])
store.begin(RunMeta(edges={0: (0, 1, 10)}, k=1, beta=0.0, method="oggp"))
print("LOCKED", flush=True)
sys.stdin.read()  # park here until the parent hangs up
store.close()
print("CLOSED", flush=True)
"""


def meta() -> RunMeta:
    return RunMeta(edges={0: (0, 1, 10)}, k=1, beta=0.0, method="oggp")


@pytest.fixture()
def holder(tmp_path):
    """A child process holding the lock on ``tmp_path/run``."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ("src", env.get("PYTHONPATH", "")) if p
    )
    proc = subprocess.Popen(
        [sys.executable, "-c", HOLDER_SCRIPT, str(tmp_path / "run")],
        stdin=subprocess.PIPE, stdout=subprocess.PIPE, text=True, env=env,
        cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
    )
    assert proc.stdout.readline().strip() == "LOCKED"
    try:
        yield proc
    finally:
        if proc.poll() is None:
            proc.kill()
        proc.wait(timeout=60)


class TestCrossProcessLock:
    def test_second_process_fails_fast(self, tmp_path, holder):
        started = time.monotonic()
        with pytest.raises(ConfigError, match="locked by another process"):
            CheckpointStore.resume(tmp_path / "run")
        # LOCK_NB: the refusal must not block behind the holder.
        assert time.monotonic() - started < 2.0

    def test_begin_also_refused_while_held(self, tmp_path, holder):
        with pytest.raises(ConfigError, match="locked by another process"):
            CheckpointStore(tmp_path / "run").begin(meta())

    def test_lock_released_after_clean_close(self, tmp_path, holder):
        holder.stdin.close()  # child unparks, closes the store, exits
        assert holder.stdout.readline().strip() == "CLOSED"
        assert holder.wait(timeout=60) == 0
        with CheckpointStore.resume(tmp_path / "run") as store:
            assert store.state.delivered == {0: 0}

    def test_lock_released_after_sigkill(self, tmp_path, holder):
        os.kill(holder.pid, signal.SIGKILL)
        assert holder.wait(timeout=60) == -signal.SIGKILL
        # The kernel dropped the flock with the process: resume works
        # immediately, no stale lock file to clean up by hand.
        with CheckpointStore.resume(tmp_path / "run") as store:
            assert store.state.delivered == {0: 0}
        assert (tmp_path / "run" / "journal.kpbj").stat().st_size > 0
