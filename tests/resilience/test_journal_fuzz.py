"""Torn-write fuzzing: a mangled checkpoint never silently corrupts.

The contract under test (docs/robustness.md): loading a damaged
checkpoint directory either recovers a *valid prefix* of the recorded
rounds — the journal's torn-tail tolerance — or raises
:class:`~repro.util.errors.GraphError`.  It never returns amounts that
no prefix of the run could have produced, and never leaks any other
exception type.  Every truncation point and every single-byte flip of
a real journal/snapshot is tried exhaustively.
"""

import pytest

from repro.resilience.journal import (
    JOURNAL_NAME,
    SNAPSHOT_NAME,
    CheckpointStore,
    RunMeta,
    load_checkpoint,
)
from repro.util.errors import GraphError

EDGES = {0: (0, 0, 100), 1: (0, 1, 50), 2: (1, 0, 75)}
ROUNDS = [{0: 40, 1: 20}, {0: 60, 2: 30}, {1: 30, 2: 45}]


def write_run(directory, snapshot_every=0):
    meta = RunMeta(edges=EDGES, k=2, beta=1.0, method="oggp")
    with CheckpointStore(directory, snapshot_every=snapshot_every) as store:
        store.begin(meta)
        for r, deltas in enumerate(ROUNDS):
            store.record_round(deltas, round_index=r)
        store.mark_complete()


def valid_prefix_states():
    """Every per-edge delivered dict some prefix of the run produces."""
    states = []
    delivered = {eid: 0 for eid in EDGES}
    states.append(dict(delivered))
    for deltas in ROUNDS:
        for eid, amount in deltas.items():
            delivered[eid] += amount
        states.append(dict(delivered))
    return states


def assert_valid_prefix_or_graph_error(directory, prefixes):
    try:
        state = load_checkpoint(directory)
    except GraphError:
        return
    assert dict(state.delivered) in prefixes, (
        f"loaded delivered {state.delivered!r} matches no valid prefix"
    )


class TestJournalTruncation:
    def test_every_truncation_length(self, tmp_path):
        write_run(tmp_path)
        journal = tmp_path / JOURNAL_NAME
        blob = journal.read_bytes()
        prefixes = valid_prefix_states()
        for cut in range(len(blob)):
            journal.write_bytes(blob[:cut])
            assert_valid_prefix_or_graph_error(tmp_path, prefixes)

    def test_every_truncation_resumes_appendable(self, tmp_path):
        """A resumed store on any valid prefix can keep recording."""
        write_run(tmp_path)
        journal = tmp_path / JOURNAL_NAME
        blob = journal.read_bytes()
        prefixes = valid_prefix_states()
        # Sample every 7th offset: resume opens files, so the full
        # cross-product is slow without losing coverage classes.
        for cut in range(0, len(blob), 7):
            journal.write_bytes(blob[:cut])
            try:
                store = CheckpointStore.resume(tmp_path)
            except GraphError:
                continue
            with store:
                assert dict(store.state.delivered) in prefixes
                pending = store.state.pending()
                if pending:
                    eid = min(pending)
                    store.record_round(
                        {eid: pending[eid][2]}, store.state.next_round
                    )
            loaded = load_checkpoint(tmp_path)
            assert loaded.delivered[eid] == EDGES[eid][2] if pending else True


class TestJournalBitFlips:
    @pytest.mark.parametrize("stride_offset", range(3))
    def test_flipped_bytes(self, tmp_path, stride_offset):
        write_run(tmp_path)
        journal = tmp_path / JOURNAL_NAME
        blob = journal.read_bytes()
        prefixes = valid_prefix_states()
        for offset in range(stride_offset, len(blob), 3):
            mangled = bytearray(blob)
            mangled[offset] ^= 0xFF
            journal.write_bytes(bytes(mangled))
            assert_valid_prefix_or_graph_error(tmp_path, prefixes)
        journal.write_bytes(blob)
        assert load_checkpoint(tmp_path).complete


class TestSnapshotDamage:
    def test_every_snapshot_truncation(self, tmp_path):
        write_run(tmp_path, snapshot_every=1)
        snapshot = tmp_path / SNAPSHOT_NAME
        blob = snapshot.read_bytes()
        prefixes = valid_prefix_states()
        for cut in range(len(blob)):
            snapshot.write_bytes(blob[:cut])
            assert_valid_prefix_or_graph_error(tmp_path, prefixes)

    def test_every_snapshot_byte_flip(self, tmp_path):
        write_run(tmp_path, snapshot_every=1)
        snapshot = tmp_path / SNAPSHOT_NAME
        blob = snapshot.read_bytes()
        prefixes = valid_prefix_states()
        for offset in range(len(blob)):
            mangled = bytearray(blob)
            mangled[offset] ^= 0xFF
            snapshot.write_bytes(bytes(mangled))
            assert_valid_prefix_or_graph_error(tmp_path, prefixes)

    def test_journal_flips_with_snapshot_present(self, tmp_path):
        """A damaged journal can never drag state below the snapshot."""
        meta = RunMeta(edges=EDGES, k=2, beta=1.0, method="oggp")
        with CheckpointStore(tmp_path, snapshot_every=0) as store:
            store.begin(meta)
            store.record_round(ROUNDS[0], round_index=0)
            store.snapshot()
            store.record_round(ROUNDS[1], round_index=1)
        journal = tmp_path / JOURNAL_NAME
        blob = journal.read_bytes()
        floor = valid_prefix_states()[1]  # snapshot state: after round 0
        for offset in range(len(blob)):
            mangled = bytearray(blob)
            mangled[offset] ^= 0xFF
            journal.write_bytes(bytes(mangled))
            try:
                state = load_checkpoint(tmp_path)
            except GraphError:
                continue
            for eid, amount in floor.items():
                assert state.delivered[eid] >= amount
