"""FaultSpec/FaultPlan: validation, parsing, coordinate determinism."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.core import oggp
from repro.graph.bipartite import BipartiteGraph
from repro.resilience import FaultPlan, FaultSpec, planned_transfer_faults
from repro.resilience.faults import count_fault, count_planned_faults
from repro.util.errors import ConfigError, ReproError
from tests.conftest import bipartite_graphs


class TestFaultSpecValidation:
    def test_defaults_are_fault_free(self):
        spec = FaultSpec()
        assert not spec.any_faults()
        assert not spec.plan().any_faults()

    @pytest.mark.parametrize(
        "field",
        [
            "transfer_failure_rate",
            "transfer_stall_rate",
            "worker_crash_rate",
            "link_degradation_rate",
        ],
    )
    @pytest.mark.parametrize("bad", [-0.1, 1.5])
    def test_rates_must_be_probabilities(self, field, bad):
        with pytest.raises(ConfigError, match=field):
            FaultSpec(**{field: bad})

    def test_fail_plus_stall_bounded_by_one(self):
        FaultSpec(transfer_failure_rate=0.6, transfer_stall_rate=0.4)
        with pytest.raises(ConfigError, match="must not exceed 1"):
            FaultSpec(transfer_failure_rate=0.7, transfer_stall_rate=0.4)

    @pytest.mark.parametrize("bad", [0.0, -0.5, 1.1])
    def test_degradation_factor_in_unit_interval(self, bad):
        with pytest.raises(ConfigError, match="link_degradation_factor"):
            FaultSpec(link_degradation_factor=bad)

    def test_errors_are_repro_errors(self):
        with pytest.raises(ReproError):
            FaultSpec(worker_crash_rate=2.0)

    def test_any_faults_per_field(self):
        for kwargs in (
            {"transfer_failure_rate": 0.1},
            {"transfer_stall_rate": 0.1},
            {"worker_crash_rate": 0.1},
            {"link_degradation_rate": 0.1},
        ):
            assert FaultSpec(**kwargs).any_faults()


class TestFaultSpecParse:
    def test_bare_float_is_transfer_failure_rate(self):
        spec = FaultSpec.parse("0.25")
        assert spec == FaultSpec(transfer_failure_rate=0.25)

    def test_key_value_list(self):
        spec = FaultSpec.parse(
            "seed=7, transfer=0.1, stall=0.05, crash=0.02, "
            "degrade=0.2, factor=0.5"
        )
        assert spec == FaultSpec(
            seed=7,
            transfer_failure_rate=0.1,
            transfer_stall_rate=0.05,
            worker_crash_rate=0.02,
            link_degradation_rate=0.2,
            link_degradation_factor=0.5,
        )

    def test_fail_is_an_alias_for_transfer(self):
        assert FaultSpec.parse("fail=0.3") == FaultSpec.parse("transfer=0.3")

    def test_empty_spec_rejected(self):
        with pytest.raises(ConfigError, match="empty"):
            FaultSpec.parse("   ")

    def test_unknown_key_rejected_with_key_list(self):
        with pytest.raises(ConfigError, match="bad --faults entry"):
            FaultSpec.parse("bogus=1")

    def test_missing_equals_rejected(self):
        with pytest.raises(ConfigError, match="bad --faults entry"):
            FaultSpec.parse("transfer")

    def test_non_numeric_value_rejected(self):
        with pytest.raises(ConfigError, match="bad --faults value"):
            FaultSpec.parse("transfer=lots")

    def test_parsed_spec_still_validated(self):
        with pytest.raises(ConfigError, match="worker_crash_rate"):
            FaultSpec.parse("crash=2")


HEAVY = FaultSpec(
    seed=11,
    transfer_failure_rate=0.3,
    transfer_stall_rate=0.2,
    worker_crash_rate=0.4,
    link_degradation_rate=0.5,
    link_degradation_factor=0.25,
)


class TestCoordinateDeterminism:
    def test_same_seed_same_decisions(self):
        a, b = FaultPlan(HEAVY), FaultPlan(HEAVY)
        for step in range(20):
            for eid in range(10):
                assert a.transfer_outcome(0, step, eid) == b.transfer_outcome(
                    0, step, eid
                )
            assert a.link_factor(0, step) == b.link_factor(0, step)
        for index in range(20):
            assert a.worker_crashes(index, 1) == b.worker_crashes(index, 1)

    def test_order_independence(self):
        plan = FaultPlan(HEAVY)
        forward = [
            plan.transfer_outcome(0, s, e) for s in range(8) for e in range(8)
        ]
        backward = [
            plan.transfer_outcome(0, s, e)
            for s in reversed(range(8))
            for e in reversed(range(8))
        ]
        assert forward == list(reversed(backward))

    def test_categories_independent(self):
        """Crash draws don't perturb transfer draws: same transfer
        decisions with and without a crash rate."""
        with_crash = FaultPlan(HEAVY)
        without = FaultPlan(
            FaultSpec(
                seed=HEAVY.seed,
                transfer_failure_rate=HEAVY.transfer_failure_rate,
                transfer_stall_rate=HEAVY.transfer_stall_rate,
                link_degradation_rate=HEAVY.link_degradation_rate,
                link_degradation_factor=HEAVY.link_degradation_factor,
            )
        )
        for step in range(10):
            for eid in range(10):
                assert with_crash.transfer_outcome(
                    0, step, eid
                ) == without.transfer_outcome(0, step, eid)

    def test_rounds_get_independent_draws(self):
        plan = FaultPlan(FaultSpec(seed=3, transfer_failure_rate=0.5))
        rounds = [
            tuple(plan.transfer_outcome(r, s, 0) for s in range(40))
            for r in range(3)
        ]
        assert len(set(rounds)) > 1

    def test_different_seeds_differ(self):
        a = FaultPlan(FaultSpec(seed=1, transfer_failure_rate=0.5))
        b = FaultPlan(FaultSpec(seed=2, transfer_failure_rate=0.5))
        draws_a = [a.transfer_outcome(0, s, 0) for s in range(64)]
        draws_b = [b.transfer_outcome(0, s, 0) for s in range(64)]
        assert draws_a != draws_b

    def test_decisions_are_pure_no_metrics(self):
        with obs.observed() as (registry, _):
            plan = FaultPlan(HEAVY)
            plan.transfer_outcome(0, 0, 0)
            plan.worker_crashes(0, 1)
            plan.link_factor(0, 0)
            assert not [
                n for n in registry.names() if n.startswith("resilience.")
            ]

    def test_zero_rates_short_circuit(self):
        plan = FaultPlan(FaultSpec(seed=9))
        assert plan.transfer_outcome(0, 0, 0) == "ok"
        assert plan.worker_crashes(0, 1) is False
        assert plan.link_factor(0, 0) == 1.0

    def test_link_factor_values(self):
        plan = FaultPlan(HEAVY)
        factors = {plan.link_factor(0, s) for s in range(64)}
        assert factors == {1.0, HEAVY.link_degradation_factor}

    @given(rate=st.floats(0.2, 0.8))
    @settings(max_examples=10, deadline=None)
    def test_rates_roughly_respected(self, rate):
        plan = FaultPlan(FaultSpec(seed=5, worker_crash_rate=rate))
        crashes = sum(plan.worker_crashes(i, 1) for i in range(500))
        assert abs(crashes / 500 - rate) < 0.15


class TestPlannedTransferFaults:
    def _schedule(self, seed=0):
        g = BipartiteGraph.from_edges(
            [(0, 0, 5.0), (1, 1, 4.0), (0, 1, 3.0), (1, 0, 2.0), (2, 2, 6.0)]
        )
        return g, oggp(g, k=3, beta=1.0)

    def test_none_plan_is_empty(self):
        _, schedule = self._schedule()
        assert planned_transfer_faults(schedule, None) == {}

    def test_fault_free_plan_is_empty(self):
        _, schedule = self._schedule()
        plan = FaultPlan(FaultSpec(seed=1, worker_crash_rate=0.5))
        assert planned_transfer_faults(schedule, plan) == {}

    def test_first_failure_only(self):
        """Each edge appears at most once, at its *first* faulted step."""
        _, schedule = self._schedule()
        plan = FaultPlan(
            FaultSpec(seed=2, transfer_failure_rate=0.4, transfer_stall_rate=0.3)
        )
        planned = planned_transfer_faults(schedule, plan)
        assert planned, "expected faults at these rates"
        for eid, (step, kind) in planned.items():
            assert kind in ("fail", "stall")
            # The recorded step is the edge's first non-ok draw.
            first = next(
                i
                for i, s in enumerate(schedule.steps)
                if any(t.edge_id == eid for t in s.transfers)
                and plan.transfer_outcome(0, i, eid) != "ok"
            )
            assert step == first

    def test_pure_function_of_inputs(self):
        _, schedule = self._schedule()
        plan = FaultPlan(FaultSpec(seed=2, transfer_failure_rate=0.4))
        assert planned_transfer_faults(schedule, plan) == planned_transfer_faults(
            schedule, plan
        )
        r0 = planned_transfer_faults(schedule, plan, fault_round=0)
        r1 = planned_transfer_faults(schedule, plan, fault_round=1)
        assert r0 != r1 or not r0  # independent draws per round

    @given(graph=bipartite_graphs(), seed=st.integers(0, 50))
    @settings(max_examples=15, deadline=None)
    def test_faulted_step_always_schedules_the_edge(self, graph, seed):
        schedule = oggp(graph, k=2, beta=1.0)
        plan = FaultPlan(
            FaultSpec(seed=seed, transfer_failure_rate=0.3, transfer_stall_rate=0.2)
        )
        for eid, (step, _) in planned_transfer_faults(schedule, plan).items():
            assert any(
                t.edge_id == eid for t in schedule.steps[step].transfers
            )


class TestCounters:
    def test_count_fault_aggregate_and_per_kind(self):
        with obs.observed() as (registry, _):
            count_fault("transfer_fail", 2)
            count_fault("worker_crash")
            count_fault("ignored", 0)
            snap = registry.snapshot()
            assert snap["resilience.faults_injected"]["value"] == 3
            assert snap["resilience.faults_injected.transfer_fail"]["value"] == 2
            assert snap["resilience.faults_injected.worker_crash"]["value"] == 1
            assert "resilience.faults_injected.ignored" not in snap

    def test_count_planned_faults(self):
        with obs.observed() as (registry, _):
            count_planned_faults(
                {1: (0, "fail"), 2: (3, "stall"), 5: (1, "fail")}
            )
            snap = registry.snapshot()
            assert snap["resilience.faults_injected"]["value"] == 3
            assert snap["resilience.faults_injected.transfer_fail"]["value"] == 2
            assert snap["resilience.faults_injected.transfer_stall"]["value"] == 1
