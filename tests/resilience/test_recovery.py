"""Residual-graph construction and degraded-backbone k reduction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import oggp
from repro.resilience import (
    FaultPlan,
    FaultSpec,
    recovery_k,
    residual_graph_from_amounts,
)
from repro.util.errors import ConfigError


class TestResidualGraph:
    def test_builds_edges_in_ascending_orig_id_order(self):
        pending = {7: (0, 1, 3.0), 2: (1, 0, 5.0), 4: (0, 0, 1.0)}
        graph, mapping = residual_graph_from_amounts(pending)
        assert graph.num_edges == 3
        # new ids assigned in ascending original-id order
        ordered = [mapping[e.id] for e in graph.edges()]
        assert sorted(mapping.values()) == [2, 4, 7]
        assert ordered == sorted(ordered)
        for edge in graph.edges():
            left, right, remaining = pending[mapping[edge.id]]
            assert (edge.left, edge.right) == (left, right)
            assert edge.weight == remaining

    def test_deterministic_regardless_of_dict_order(self):
        a = {1: (0, 0, 2.0), 9: (1, 1, 4.0), 5: (0, 1, 3.0)}
        b = dict(reversed(list(a.items())))
        ga, ma = residual_graph_from_amounts(a)
        gb, mb = residual_graph_from_amounts(b)
        assert ma == mb
        assert [
            (e.left, e.right, e.weight) for e in ga.edges()
        ] == [(e.left, e.right, e.weight) for e in gb.edges()]

    def test_empty_pending_gives_empty_graph(self):
        graph, mapping = residual_graph_from_amounts({})
        assert graph.num_edges == 0
        assert mapping == {}

    @pytest.mark.parametrize("bad", [0, -1.5])
    def test_nonpositive_residual_rejected(self, bad):
        with pytest.raises(ConfigError, match="must be positive"):
            residual_graph_from_amounts({3: (0, 0, bad)})

    def test_residual_is_schedulable(self):
        pending = {10: (0, 0, 4.0), 11: (0, 1, 2.0), 12: (1, 0, 3.0)}
        graph, _ = residual_graph_from_amounts(pending)
        schedule = oggp(graph, k=2, beta=1.0)
        schedule.validate(graph)

    @given(
        amounts=st.dictionaries(
            st.integers(0, 100),
            st.tuples(
                st.integers(0, 4),
                st.integers(0, 4),
                st.floats(0.1, 50.0),
            ),
            min_size=1,
            max_size=10,
        )
    )
    @settings(max_examples=20, deadline=None)
    def test_total_residual_weight_preserved(self, amounts):
        graph, mapping = residual_graph_from_amounts(amounts)
        assert graph.num_edges == len(amounts)
        assert sum(e.weight for e in graph.edges()) == pytest.approx(
            sum(v[2] for v in amounts.values())
        )
        assert set(mapping.values()) == set(amounts)


class TestRecoveryK:
    def _plan(self, factor):
        return FaultPlan(
            FaultSpec(link_degradation_rate=0.5, link_degradation_factor=factor)
        )

    def test_healthy_backbone_keeps_k(self):
        assert recovery_k(6, self._plan(0.5), degraded=False) == 6

    def test_no_plan_keeps_k(self):
        assert recovery_k(6, None, degraded=True) == 6

    def test_degraded_scales_by_factor(self):
        assert recovery_k(6, self._plan(0.5), degraded=True) == 3
        assert recovery_k(10, self._plan(0.25), degraded=True) == 2

    def test_never_below_one(self):
        assert recovery_k(1, self._plan(0.1), degraded=True) == 1
        assert recovery_k(3, self._plan(0.1), degraded=True) == 1

    def test_invalid_k_rejected(self):
        with pytest.raises(ConfigError, match="k must be >= 1"):
            recovery_k(0, None, degraded=False)


class TestResumeRun:
    def make_checkpoint(self, tmp_path, *, complete=False):
        from repro.resilience import CheckpointStore, RunMeta

        meta = RunMeta(
            edges={0: (0, 0, 100), 1: (0, 1, 50), 2: (1, 0, 75)},
            k=2, beta=1.0, method="oggp",
        )
        with CheckpointStore(tmp_path) as store:
            store.begin(meta)
            if complete:
                store.record_round({0: 100, 1: 50, 2: 75}, round_index=0)
                store.mark_complete()
            else:
                store.record_round({0: 60, 1: 50}, round_index=0)
        return meta

    def test_rebuilds_residual_of_undelivered(self, tmp_path):
        from repro.resilience import resume_run

        self.make_checkpoint(tmp_path)
        state = resume_run(tmp_path)
        assert not state.complete
        assert state.delivered == {0: 60, 1: 50, 2: 0}
        assert state.checkpoint.next_round == 1
        residual = {
            state.id_map[e.id]: (e.left, e.right, e.weight)
            for e in state.residual.edges()
        }
        assert residual == {0: (0, 0, 40), 2: (1, 0, 75)}

    def test_complete_run_has_empty_residual(self, tmp_path):
        from repro.resilience import resume_run

        self.make_checkpoint(tmp_path, complete=True)
        state = resume_run(tmp_path)
        assert state.complete
        assert state.residual.num_edges == 0
        assert state.id_map == {}

    def test_residual_schedules_like_a_recovery_round(self, tmp_path):
        from repro.resilience import resume_run, verify_recovery_schedule

        self.make_checkpoint(tmp_path)
        state = resume_run(tmp_path)
        schedule = oggp(state.residual, k=2, beta=1.0)
        verify_recovery_schedule(state.residual, schedule)

    def test_records_resume_timer(self, tmp_path):
        from repro import obs
        from repro.resilience import resume_run

        self.make_checkpoint(tmp_path)
        with obs.observed() as (registry, _):
            resume_run(tmp_path)
            snap = registry.snapshot()
        assert "checkpoint.resume" in snap
        assert "checkpoint.load" in snap


class TestVerifyRecoverySchedule:
    def test_valid_schedule_passes(self):
        from repro.resilience import verify_recovery_schedule

        pending = {3: (0, 0, 4.0), 8: (1, 1, 2.0)}
        graph, _ = residual_graph_from_amounts(pending)
        verify_recovery_schedule(graph, oggp(graph, k=2, beta=1.0))

    def test_under_coverage_rejected_with_summary(self):
        from repro.core.schedule import Schedule
        from repro.resilience import verify_recovery_schedule

        pending = {3: (0, 0, 4.0), 8: (1, 1, 2.0)}
        graph, _ = residual_graph_from_amounts(pending)
        empty = Schedule([], k=2, beta=1.0)
        with pytest.raises(ConfigError, match="failed verification"):
            verify_recovery_schedule(graph, empty)

    def test_wrong_graph_rejected(self):
        from repro.resilience import verify_recovery_schedule

        graph_a, _ = residual_graph_from_amounts({0: (0, 0, 4.0)})
        graph_b, _ = residual_graph_from_amounts({0: (0, 0, 9.0)})
        schedule = oggp(graph_a, k=2, beta=1.0)
        with pytest.raises(ConfigError, match="failed verification"):
            verify_recovery_schedule(graph_b, schedule)
