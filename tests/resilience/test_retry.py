"""RetryPolicy: validation, deterministic backoff, the run() loop."""

import json
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.resilience import RetryPolicy
from repro.util.errors import ConfigError


class TestValidation:
    def test_defaults_valid(self):
        RetryPolicy()

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"max_attempts": 0}, "max_attempts"),
            ({"backoff_base": -1.0}, "backoff_base"),
            ({"max_backoff": -0.1}, "backoff_base and max_backoff"),
            ({"backoff_multiplier": 0.5}, "backoff_multiplier"),
            ({"jitter": 1.0}, "jitter"),
            ({"jitter": -0.1}, "jitter"),
            ({"task_timeout": 0.0}, "task_timeout"),
            ({"task_timeout": -5.0}, "task_timeout"),
        ],
    )
    def test_bad_values_rejected(self, kwargs, match):
        with pytest.raises(ConfigError, match=match):
            RetryPolicy(**kwargs)


class TestAllowsRetry:
    def test_counts_the_first_try(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.allows_retry(1)
        assert policy.allows_retry(2)
        assert not policy.allows_retry(3)

    def test_single_attempt_never_retries(self):
        assert not RetryPolicy(max_attempts=1).allows_retry(1)


class TestDelay:
    def test_exponential_growth_without_jitter(self):
        policy = RetryPolicy(
            backoff_base=0.1, backoff_multiplier=2.0, max_backoff=100.0, jitter=0.0
        )
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.4)

    def test_capped_at_max_backoff(self):
        policy = RetryPolicy(
            backoff_base=1.0, backoff_multiplier=10.0, max_backoff=2.5, jitter=0.0
        )
        assert policy.delay(5) == 2.5

    def test_zero_base_means_zero_delay(self):
        policy = RetryPolicy(backoff_base=0.0, jitter=0.5)
        assert policy.delay(1) == 0.0

    def test_jitter_deterministic_and_bounded(self):
        policy = RetryPolicy(backoff_base=1.0, jitter=0.2, max_backoff=100.0)
        for attempt in range(1, 6):
            d1 = policy.delay(attempt)
            d2 = RetryPolicy(
                backoff_base=1.0, jitter=0.2, max_backoff=100.0
            ).delay(attempt)
            assert d1 == d2, "jitter must be a pure function of (seed, attempt)"
            base = min(1.0 * 2.0 ** (attempt - 1), 100.0)
            assert base * 0.8 <= d1 <= base * 1.2

    def test_jitter_varies_by_seed(self):
        a = RetryPolicy(backoff_base=1.0, jitter=0.5, seed=1)
        b = RetryPolicy(backoff_base=1.0, jitter=0.5, seed=2)
        assert [a.delay(n) for n in range(1, 8)] != [
            b.delay(n) for n in range(1, 8)
        ]

    def test_attempt_is_one_based(self):
        with pytest.raises(ConfigError, match="1-based"):
            RetryPolicy().delay(0)


class TestRun:
    def test_success_first_try(self):
        policy = RetryPolicy(max_attempts=3, backoff_base=0.0, jitter=0.0)
        calls = []
        assert policy.run(lambda n: calls.append(n) or "ok") == "ok"
        assert calls == [1]

    def test_retries_until_success(self):
        policy = RetryPolicy(max_attempts=5, backoff_base=0.0, jitter=0.0)
        calls = []

        def flaky(attempt):
            calls.append(attempt)
            if attempt < 3:
                raise ValueError("boom")
            return attempt

        assert policy.run(flaky) == 3
        assert calls == [1, 2, 3]

    def test_final_failure_propagates_unchanged(self):
        policy = RetryPolicy(max_attempts=2, backoff_base=0.0, jitter=0.0)

        def always(attempt):
            raise ValueError(f"attempt {attempt}")

        with pytest.raises(ValueError, match="attempt 2"):
            policy.run(always)

    def test_non_listed_exceptions_propagate_immediately(self):
        policy = RetryPolicy(max_attempts=5, backoff_base=0.0, jitter=0.0)
        calls = []

        def wrong_kind(attempt):
            calls.append(attempt)
            raise KeyError("not retryable")

        with pytest.raises(KeyError):
            policy.run(wrong_kind, retry_on=(ValueError,))
        assert calls == [1]

    def test_sleeps_the_deterministic_delays(self):
        policy = RetryPolicy(
            max_attempts=3, backoff_base=0.1, backoff_multiplier=2.0, jitter=0.0
        )
        slept = []

        def fail_twice(attempt):
            if attempt < 3:
                raise ValueError
            return "done"

        assert policy.run(fail_twice, sleep=slept.append) == "done"
        assert slept == [pytest.approx(0.1), pytest.approx(0.2)]

    def test_retries_counted(self):
        policy = RetryPolicy(max_attempts=4, backoff_base=0.0, jitter=0.0)
        with obs.observed() as (registry, _):
            policy.run(lambda n: n if n == 3 else (_ for _ in ()).throw(ValueError()))
            snap = registry.snapshot()
            assert snap["resilience.retries"]["value"] == 2
            assert snap["resilience.retries.run"]["value"] == 2


#: Run in a child interpreter: print the policy's full delay sequence.
_CHILD_DELAYS = """\
import json, sys
from repro.resilience import RetryPolicy

seed, attempts = json.loads(sys.argv[1])
policy = RetryPolicy(
    max_attempts=attempts, backoff_base=0.05, jitter=0.5, seed=seed
)
print(json.dumps([policy.delay(n) for n in range(1, attempts)]))
"""


class TestCrossProcessDeterminism:
    """The jitter contract: a pure function of ``(seed, attempt)``.

    The worker pool re-creates RetryPolicy objects inside spawned
    worker processes; if the jitter draw leaned on any per-process
    state (hash randomisation, global RNG, ...) retry pacing would
    diverge between parent and workers.  The property is checked
    against a *separate interpreter*, not just another object.
    """

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_delay_sequence_identical_in_subprocess(self, seed):
        attempts = 8
        policy = RetryPolicy(
            max_attempts=attempts, backoff_base=0.05, jitter=0.5, seed=seed
        )
        local = [policy.delay(n) for n in range(1, attempts)]
        out = subprocess.run(
            [sys.executable, "-c", _CHILD_DELAYS, json.dumps([seed, attempts])],
            capture_output=True, text=True, check=True,
        )
        assert json.loads(out.stdout) == local

    def test_delay_depends_on_seed_and_attempt_only(self):
        a = RetryPolicy(max_attempts=5, backoff_base=0.05, jitter=0.5, seed=9)
        b = RetryPolicy(
            max_attempts=5, backoff_base=0.05, jitter=0.5, seed=9,
            task_timeout=30.0,  # unrelated field must not shift the draw
        )
        assert [a.delay(n) for n in range(1, 5)] == [
            b.delay(n) for n in range(1, 5)
        ]


class TestMaxElapsed:
    """The total-time budget (``max_elapsed``) on top of attempt counting."""

    def test_validation(self):
        with pytest.raises(ConfigError, match="max_elapsed"):
            RetryPolicy(max_elapsed=0.0)
        with pytest.raises(ConfigError, match="max_elapsed"):
            RetryPolicy(max_elapsed=-1.0)

    def test_planned_elapsed_is_cumulative_delay(self):
        policy = RetryPolicy(max_attempts=5, backoff_base=0.1, jitter=0.3, seed=4)
        assert policy.planned_elapsed(0) == 0.0
        assert policy.planned_elapsed(3) == pytest.approx(
            policy.delay(1) + policy.delay(2) + policy.delay(3)
        )

    def test_planned_elapsed_rejects_negative(self):
        with pytest.raises(ConfigError, match="attempts"):
            RetryPolicy().planned_elapsed(-1)

    def test_budget_cuts_retries_short(self):
        # Attempt budget alone would allow 9 retries; the time budget
        # (charged against the deterministic planned delays) stops first.
        policy = RetryPolicy(
            max_attempts=10, backoff_base=1.0, backoff_multiplier=1.0,
            jitter=0.0, max_elapsed=2.5,
        )
        allowed = [n for n in range(1, 10) if policy.allows_retry(n)]
        assert allowed == [1, 2]  # planned_elapsed(3) = 3.0 >= 2.5

    def test_measured_elapsed_overrides_planned(self):
        policy = RetryPolicy(max_attempts=10, jitter=0.0, max_elapsed=5.0)
        assert policy.allows_retry(1, elapsed=4.9)
        assert not policy.allows_retry(1, elapsed=5.0)

    def test_budget_is_seed_deterministic(self):
        a = RetryPolicy(
            max_attempts=20, backoff_base=0.5, jitter=0.5, seed=11,
            max_elapsed=3.0,
        )
        b = RetryPolicy(
            max_attempts=20, backoff_base=0.5, jitter=0.5, seed=11,
            max_elapsed=3.0,
        )
        assert [a.allows_retry(n) for n in range(1, 20)] == [
            b.allows_retry(n) for n in range(1, 20)
        ]

    def test_run_gives_up_on_budget(self):
        policy = RetryPolicy(
            max_attempts=50, backoff_base=1.0, backoff_multiplier=1.0,
            jitter=0.0, max_elapsed=3.5,
        )
        calls = []

        def fn(attempt):
            calls.append(attempt)
            raise ValueError("boom")

        with pytest.raises(ValueError):
            policy.run(fn, sleep=lambda s: None)
        # Pauses of 1s precede attempts 2..; the 4th pause would push
        # elapsed to 4.0 >= 3.5, so exactly 4 attempts run.
        assert calls == [1, 2, 3, 4]


class TestParse:
    def test_bare_integer_is_attempt_count(self):
        assert RetryPolicy.parse("5") == RetryPolicy(max_attempts=5)

    def test_key_value_spec(self):
        policy = RetryPolicy.parse(
            "attempts=6,max-elapsed=30,base=0.1,multiplier=3,"
            "max-backoff=4,jitter=0.2,timeout=12,seed=42"
        )
        assert policy == RetryPolicy(
            max_attempts=6, max_elapsed=30.0, backoff_base=0.1,
            backoff_multiplier=3.0, max_backoff=4.0, jitter=0.2,
            task_timeout=12.0, seed=42,
        )

    def test_underscore_aliases(self):
        assert RetryPolicy.parse("max_elapsed=9").max_elapsed == 9.0
        assert RetryPolicy.parse("max_backoff=7").max_backoff == 7.0

    @pytest.mark.parametrize(
        "text", ["", "bogus=1", "attempts", "attempts=x", "max-elapsed=0"]
    )
    def test_bad_specs_rejected(self, text):
        with pytest.raises(ConfigError):
            RetryPolicy.parse(text)
