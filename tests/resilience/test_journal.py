"""Durable checkpointing: journal framing, snapshots, crash recovery."""

import pytest

from repro import obs
from repro.resilience.journal import (
    JOURNAL_NAME,
    SNAPSHOT_NAME,
    CheckpointStore,
    RunMeta,
    load_checkpoint,
)
from repro.util.errors import ConfigError, GraphError

EDGES = {0: (0, 0, 100), 1: (0, 1, 50), 2: (1, 0, 75)}


def make_meta(**overrides):
    base = dict(edges=EDGES, k=2, beta=1.0, method="oggp")
    base.update(overrides)
    return RunMeta(**base)


class TestRunMeta:
    def test_payload_round_trip(self):
        meta = make_meta(extra={"seed": 7, "shape": [2, 2]})
        again = RunMeta.from_payload(meta.to_payload())
        assert again == meta

    def test_float_kind_round_trip(self):
        meta = make_meta(
            edges={0: (0, 0, 12.5), 1: (1, 1, 0.25)}, amount_kind="float"
        )
        again = RunMeta.from_payload(meta.to_payload())
        assert again.edges[1] == (1, 1, 0.25)

    def test_bad_kind_rejected(self):
        with pytest.raises(ConfigError, match="amount_kind"):
            make_meta(amount_kind="bytes")

    def test_empty_edges_rejected(self):
        with pytest.raises(ConfigError, match="at least one edge"):
            make_meta(edges={})

    def test_non_positive_total_rejected(self):
        with pytest.raises(ConfigError, match="positive"):
            make_meta(edges={0: (0, 0, 0)})

    def test_garbage_payload_raises_graph_error(self):
        with pytest.raises(GraphError):
            RunMeta.from_payload(b"not json at all")


class TestJournalRoundTrip:
    def test_deltas_accumulate(self, tmp_path):
        with CheckpointStore(tmp_path) as store:
            store.begin(make_meta())
            store.record_round({0: 60, 1: 50}, round_index=0)
            store.record_round({0: 40, 2: 75}, round_index=1)
            store.mark_complete()
        state = load_checkpoint(tmp_path)
        assert state.delivered == {0: 100, 1: 50, 2: 75}
        assert state.seq == 2
        assert state.next_round == 2
        assert state.complete
        assert state.pending() == {}

    def test_partial_run_pending(self, tmp_path):
        with CheckpointStore(tmp_path) as store:
            store.begin(make_meta())
            store.record_round({0: 30}, round_index=0)
        state = load_checkpoint(tmp_path)
        assert not state.complete
        assert state.pending() == {0: (0, 0, 70), 1: (0, 1, 50), 2: (1, 0, 75)}
        assert state.next_round == 1

    def test_float_amounts_round_trip_exactly(self, tmp_path):
        amount = 12.781232135412414  # must survive as an f64, not text
        with CheckpointStore(tmp_path) as store:
            store.begin(
                make_meta(edges={0: (0, 0, 100.0)}, amount_kind="float")
            )
            store.record_round({0: amount}, round_index=0)
        state = load_checkpoint(tmp_path)
        assert state.delivered[0] == amount

    def test_zero_and_negative_deltas_dropped(self, tmp_path):
        with CheckpointStore(tmp_path) as store:
            store.begin(make_meta())
            store.record_round({0: 10, 1: 0, 2: -5}, round_index=0)
        state = load_checkpoint(tmp_path)
        assert state.delivered == {0: 10, 1: 0, 2: 0}

    @pytest.mark.parametrize("policy", ["always", "round", "never"])
    def test_fsync_policies_all_durable_after_close(self, policy, tmp_path):
        with CheckpointStore(tmp_path, fsync=policy) as store:
            store.begin(make_meta())
            store.record_round({0: 100}, round_index=0)
        assert load_checkpoint(tmp_path).delivered[0] == 100

    def test_metrics_recorded(self, tmp_path):
        with obs.observed() as (registry, _):
            with CheckpointStore(tmp_path) as store:
                store.begin(make_meta())
                store.record_round({0: 10}, round_index=0)
                store.snapshot()
            load_checkpoint(tmp_path)
            snap = registry.snapshot()
        assert snap["checkpoint.records_written"]["value"] >= 2
        assert snap["checkpoint.fsyncs"]["value"] >= 2
        assert snap["checkpoint.snapshots"]["value"] == 1
        assert snap["checkpoint.snapshot_bytes"]["value"] > 0
        assert "checkpoint.load" in snap
        assert "checkpoint.append" in snap


class TestValidation:
    def test_bad_fsync_policy(self, tmp_path):
        with pytest.raises(ConfigError, match="fsync"):
            CheckpointStore(tmp_path, fsync="sometimes")

    def test_negative_snapshot_every(self, tmp_path):
        with pytest.raises(ConfigError, match="snapshot_every"):
            CheckpointStore(tmp_path, snapshot_every=-1)

    def test_state_before_begin(self, tmp_path):
        with pytest.raises(ConfigError, match="not started"):
            CheckpointStore(tmp_path).state

    def test_begin_refuses_existing_run(self, tmp_path):
        with CheckpointStore(tmp_path) as store:
            store.begin(make_meta())
        with pytest.raises(ConfigError, match="already holds a run"):
            CheckpointStore(tmp_path).begin(make_meta())

    def test_append_after_close(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.begin(make_meta())
        store.close()
        with pytest.raises(ConfigError, match="closed"):
            store.record_round({0: 1}, round_index=0)

    def test_load_empty_directory(self, tmp_path):
        with pytest.raises(GraphError, match="no checkpoint"):
            load_checkpoint(tmp_path)

    def test_unknown_edge_rejected(self, tmp_path):
        with CheckpointStore(tmp_path) as store:
            store.begin(make_meta())
            with pytest.raises(GraphError, match="unknown edge"):
                store.record_round({99: 10}, round_index=0)

    def test_over_delivery_rejected(self, tmp_path):
        with CheckpointStore(tmp_path) as store:
            store.begin(make_meta())
            with pytest.raises(GraphError, match="delivers"):
                store.record_round({1: 51}, round_index=0)


class TestTornTail:
    def test_partial_record_truncated_on_load(self, tmp_path):
        with CheckpointStore(tmp_path) as store:
            store.begin(make_meta())
            store.record_round({0: 60}, round_index=0)
        # Simulate a crash mid-append: garbage after the valid records.
        with open(tmp_path / JOURNAL_NAME, "ab") as handle:
            handle.write(b"KPBJ\x01\x02\x00\x00GARBAGE-TORN-TAIL")
        state = load_checkpoint(tmp_path)
        assert state.delivered[0] == 60

    def test_resume_truncates_and_continues(self, tmp_path):
        with CheckpointStore(tmp_path) as store:
            store.begin(make_meta())
            store.record_round({0: 60}, round_index=0)
        journal = tmp_path / JOURNAL_NAME
        clean_size = journal.stat().st_size
        with open(journal, "ab") as handle:
            handle.write(b"\xff" * 13)
        with CheckpointStore.resume(tmp_path) as store:
            assert store.state.delivered[0] == 60
            store.record_round({0: 40, 1: 50, 2: 75}, round_index=1)
            store.mark_complete()
        assert journal.stat().st_size > clean_size  # garbage gone, appends valid
        state = load_checkpoint(tmp_path)
        assert state.complete
        assert state.delivered == {0: 100, 1: 50, 2: 75}

    def test_resume_of_fully_torn_journal_reanchors_meta(self, tmp_path):
        with CheckpointStore(tmp_path) as store:
            store.begin(make_meta())
            store.record_round({0: 60}, round_index=0)
            store.snapshot()
        # Crash tore the whole (post-compaction) journal away.
        (tmp_path / JOURNAL_NAME).write_bytes(b"")
        with CheckpointStore.resume(tmp_path) as store:
            assert store.state.delivered[0] == 60
        # The journal alone must be interpretable again (meta re-anchor).
        (tmp_path / SNAPSHOT_NAME).unlink()
        assert load_checkpoint(tmp_path).meta == make_meta()


class TestSnapshots:
    def test_snapshot_compacts_journal(self, tmp_path):
        with CheckpointStore(tmp_path, snapshot_every=0) as store:
            store.begin(make_meta())
            for r in range(6):
                store.record_round({0: 10}, round_index=r)
            before = store.journal_path.stat().st_size
            store.snapshot()
            after = store.journal_path.stat().st_size
        assert after < before
        state = load_checkpoint(tmp_path)
        assert state.delivered[0] == 60
        assert state.next_round == 6

    def test_periodic_snapshot_triggers(self, tmp_path):
        with CheckpointStore(tmp_path, snapshot_every=2) as store:
            store.begin(make_meta())
            store.record_round({0: 10}, round_index=0)
            assert not store.snapshot_path.exists()
            store.record_round({0: 10}, round_index=1)
            assert store.snapshot_path.exists()

    def test_snapshot_alone_recovers_state(self, tmp_path):
        with CheckpointStore(tmp_path) as store:
            store.begin(make_meta())
            store.record_round({0: 60, 1: 25}, round_index=0)
            store.snapshot()
        (tmp_path / JOURNAL_NAME).unlink()
        state = load_checkpoint(tmp_path)
        assert state.delivered == {0: 60, 1: 25, 2: 0}
        assert state.next_round == 1

    def test_crash_between_rename_and_truncate_does_not_double_apply(
        self, tmp_path
    ):
        """Stale journal deltas carry seq <= the snapshot's: skipped."""
        with CheckpointStore(tmp_path) as store:
            store.begin(make_meta())
            store.record_round({0: 60}, round_index=0)
            pre_truncate = store.journal_path.read_bytes()
            store.snapshot()
        # Resurrect the journal as it was the instant before the
        # truncate: snapshot present AND the old delta still on disk.
        (tmp_path / JOURNAL_NAME).write_bytes(pre_truncate)
        state = load_checkpoint(tmp_path)
        assert state.delivered[0] == 60  # not 120
        with CheckpointStore.resume(tmp_path) as store:
            store.record_round({0: 40}, round_index=1)
        assert load_checkpoint(tmp_path).delivered[0] == 100

    def test_corrupt_snapshot_is_strict(self, tmp_path):
        with CheckpointStore(tmp_path) as store:
            store.begin(make_meta())
            store.record_round({0: 60}, round_index=0)
            store.snapshot()
        path = tmp_path / SNAPSHOT_NAME
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(GraphError):
            load_checkpoint(tmp_path)

    def test_truncated_snapshot_is_strict(self, tmp_path):
        with CheckpointStore(tmp_path) as store:
            store.begin(make_meta())
            store.record_round({0: 60}, round_index=0)
            store.snapshot()
        path = tmp_path / SNAPSHOT_NAME
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) - 7])
        with pytest.raises(GraphError):
            load_checkpoint(tmp_path)

    def test_complete_survives_compaction(self, tmp_path):
        with CheckpointStore(tmp_path) as store:
            store.begin(make_meta())
            store.record_round({0: 100, 1: 50, 2: 75}, round_index=0)
            store.mark_complete()
            store.snapshot()
        (tmp_path / JOURNAL_NAME).unlink()
        assert load_checkpoint(tmp_path).complete


class TestSeqReplay:
    def test_journal_restart_after_many_compactions(self, tmp_path):
        with CheckpointStore(tmp_path, snapshot_every=1) as store:
            store.begin(make_meta())
            for r in range(5):
                store.record_round({0: 20}, round_index=r)
        state = load_checkpoint(tmp_path)
        assert state.delivered[0] == 100
        assert state.seq == 5
        assert state.next_round == 5

    def test_resume_continues_sequence(self, tmp_path):
        with CheckpointStore(tmp_path) as store:
            store.begin(make_meta())
            store.record_round({0: 10}, round_index=0)
        with CheckpointStore.resume(tmp_path) as store:
            assert store.state.seq == 1
            store.record_round({0: 10}, round_index=1)
            assert store.state.seq == 2
        assert load_checkpoint(tmp_path).delivered[0] == 20


class TestExclusiveLock:
    def test_second_opener_fails_fast(self, tmp_path):
        with CheckpointStore(tmp_path) as store:
            store.begin(make_meta())
            store.record_round({0: 10}, round_index=0)
            with pytest.raises(ConfigError, match="locked"):
                CheckpointStore.resume(tmp_path)
            with pytest.raises(ConfigError, match="locked"):
                CheckpointStore(tmp_path).begin(make_meta())

    def test_close_releases_the_lock(self, tmp_path):
        with CheckpointStore(tmp_path) as store:
            store.begin(make_meta())
            store.record_round({0: 10}, round_index=0)
        with CheckpointStore.resume(tmp_path) as store:
            assert store.state.delivered[0] == 10


class TestChurnRecords:
    def test_churn_round_trips_through_journal(self, tmp_path):
        from repro.core.repair import TrafficDelta

        delta = TrafficDelta(
            inject=((9, 1, 1, 30),), remove=(1,), resize=((0, 120),)
        )
        with CheckpointStore(tmp_path) as store:
            store.begin(make_meta())
            store.record_round({0: 40, 1: 50}, round_index=0)
            store.record_churn(delta, round_index=1)
            store.record_round({9: 30}, round_index=1)
        state = load_checkpoint(tmp_path)
        # edge 1 fully delivered before removal -> truncated, kept.
        assert state.edges == {
            0: (0, 0, 120), 1: (0, 1, 50), 2: (1, 0, 75), 9: (1, 1, 30),
        }
        assert state.delivered == {0: 40, 1: 50, 2: 0, 9: 30}
        assert state.last_churn_round == 1
        assert state.pending() == {0: (0, 0, 80), 2: (1, 0, 75)}

    def test_empty_delta_writes_nothing(self, tmp_path):
        from repro.core.repair import TrafficDelta

        with CheckpointStore(tmp_path) as store:
            store.begin(make_meta())
            before = store.state.seq
            store.record_churn(TrafficDelta(), round_index=0)
            assert store.state.seq == before

    def test_edge_clearing_delta_rejected(self, tmp_path):
        from repro.core.repair import TrafficDelta

        with CheckpointStore(tmp_path) as store:
            store.begin(make_meta())
            with pytest.raises(ConfigError, match="no edges"):
                store.record_churn(
                    TrafficDelta(remove=(0, 1, 2)), round_index=0
                )

    def test_churn_survives_compaction(self, tmp_path):
        from repro.core.repair import TrafficDelta

        with CheckpointStore(tmp_path) as store:
            store.begin(make_meta())
            store.record_churn(
                TrafficDelta(inject=((9, 1, 1, 25),)), round_index=2
            )
            store.snapshot()
        (tmp_path / JOURNAL_NAME).unlink()
        state = load_checkpoint(tmp_path)
        assert state.edges[9] == (1, 1, 25)
        assert state.last_churn_round == 2


class TestPlanRecords:
    def plan_doc(self, *edge_ids):
        """A minimal one-transfer-per-step schedule document."""
        from repro.core.schedule import Schedule, Step, Transfer

        steps = [
            Step(transfers=(Transfer(left=0, right=0, amount=10.0, edge_id=e),))
            for e in edge_ids
        ]
        return Schedule(tuple(steps), k=2, beta=1.0).to_dict()

    def test_plan_round_trips(self, tmp_path):
        doc = self.plan_doc(0, 1, 2)
        with CheckpointStore(tmp_path) as store:
            store.begin(make_meta())
            store.record_plan(doc, pos=0, round_index=0, segment=2)
        state = load_checkpoint(tmp_path)
        assert state.plan == doc
        assert (state.plan_pos, state.plan_round, state.plan_segment) == (0, 0, 2)

    def test_deltas_advance_the_stored_position(self, tmp_path):
        with CheckpointStore(tmp_path) as store:
            store.begin(make_meta())
            store.record_plan(self.plan_doc(0, 1, 2), pos=0, round_index=0, segment=2)
            store.record_round({0: 10}, round_index=0)
            assert store.state.plan_pos == 2
            store.record_round({1: 10}, round_index=1)
            # Clamped at the plan's end, like the executor's tail segment.
            assert store.state.plan_pos == 3
        assert load_checkpoint(tmp_path).plan_pos == 3

    def test_position_only_update_requires_a_plan(self, tmp_path):
        with CheckpointStore(tmp_path) as store:
            store.begin(make_meta())
            with pytest.raises(ConfigError, match="no plan"):
                store.record_plan(None, pos=1, round_index=0, segment=1)

    def test_plan_survives_compaction(self, tmp_path):
        doc = self.plan_doc(0, 1)
        with CheckpointStore(tmp_path) as store:
            store.begin(make_meta())
            store.record_plan(doc, pos=0, round_index=0, segment=1)
            store.record_round({0: 10}, round_index=0)
            store.snapshot()
        (tmp_path / JOURNAL_NAME).unlink()
        state = load_checkpoint(tmp_path)
        assert state.plan == doc
        assert state.plan_pos == 1
