"""ChurnSpec / ChurnProcess: parsing, validation, deterministic draws."""

import pytest

from repro.core.repair import TrafficDelta, apply_traffic_delta
from repro.resilience.churn import ChurnProcess, ChurnSpec
from repro.util.errors import ConfigError

EDGES = {0: (0, 0, 10.0), 1: (0, 1, 6.0), 2: (1, 0, 8.0), 3: (1, 1, 4.0)}
BUSY = ChurnSpec(seed=7, inject_rate=2.0, remove_rate=1.0, resize_rate=1.5, events=4)


class TestChurnSpecValidation:
    def test_defaults_valid_and_inert(self):
        spec = ChurnSpec()
        assert not spec.any_churn()

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"inject_rate": -1.0}, "inject_rate"),
            ({"remove_rate": -0.5}, "remove_rate"),
            ({"resize_rate": -2.0}, "resize_rate"),
            ({"events": -1}, "events"),
            ({"min_amount": 0.0}, "min_amount"),
            ({"min_amount": 5.0, "max_amount": 1.0}, "min_amount"),
            ({"min_factor": 0.0}, "min_factor"),
            ({"min_factor": 2.0, "max_factor": 1.0}, "min_factor"),
        ],
    )
    def test_bad_values_rejected(self, kwargs, match):
        with pytest.raises(ConfigError, match=match):
            ChurnSpec(**kwargs)

    def test_any_churn_needs_rate_and_events(self):
        assert not ChurnSpec(inject_rate=2.0, events=0).any_churn()
        assert not ChurnSpec(events=5).any_churn()
        assert ChurnSpec(resize_rate=0.5, events=1).any_churn()


class TestChurnSpecParse:
    def test_full_spec(self):
        spec = ChurnSpec.parse(
            "seed=7,inject=2,remove=1,resize=1.5,events=4,size=2:8,factor=0.8:1.2"
        )
        assert spec == ChurnSpec(
            seed=7,
            inject_rate=2.0,
            remove_rate=1.0,
            resize_rate=1.5,
            events=4,
            min_amount=2.0,
            max_amount=8.0,
            min_factor=0.8,
            max_factor=1.2,
        )

    def test_single_value_range(self):
        spec = ChurnSpec.parse("inject=1,events=1,size=5")
        assert spec.min_amount == spec.max_amount == 5.0

    @pytest.mark.parametrize(
        "text",
        ["", "bogus=1", "inject", "inject=abc", "size=a:b", "events=1.5"],
    )
    def test_bad_specs_rejected(self, text):
        with pytest.raises(ConfigError):
            ChurnSpec.parse(text)


class TestChurnProcess:
    def test_deterministic_across_processes(self):
        a = BUSY.process().delta_for_event(1, EDGES, {}, shape=(2, 2))
        b = ChurnProcess(BUSY).delta_for_event(1, EDGES, {}, shape=(2, 2))
        assert a == b

    def test_events_draw_independently(self):
        process = BUSY.process()
        deltas = [
            process.delta_for_event(e, EDGES, {}, shape=(2, 2)) for e in range(4)
        ]
        # At these rates four identical draws would mean a broken stream.
        assert len(set(deltas)) > 1

    def test_horizon_is_quiet(self):
        process = BUSY.process()
        assert not process.delta_for_event(BUSY.events, EDGES, {}, shape=(2, 2))
        assert not process.delta_for_event(100, EDGES, {}, shape=(2, 2))

    def test_zero_rates_are_quiet(self):
        process = ChurnSpec(seed=7, events=4).process()
        assert not process.delta_for_event(0, EDGES, {}, shape=(2, 2))

    def test_negative_event_rejected(self):
        with pytest.raises(ConfigError, match="event"):
            BUSY.process().delta_for_event(-1, EDGES, {}, shape=(2, 2))

    def test_bad_shape_rejected(self):
        with pytest.raises(ConfigError, match="shape"):
            BUSY.process().delta_for_event(0, EDGES, {}, shape=(0, 2))

    def test_targets_only_live_edges(self):
        spec = ChurnSpec(seed=3, remove_rate=10.0, resize_rate=10.0, events=1)
        delivered = {0: 10.0, 1: 6.0}  # edges 0 and 1 are done
        delta = spec.process().delta_for_event(0, EDGES, delivered, shape=(2, 2))
        assert set(delta.remove) <= {2, 3}
        assert {eid for eid, _ in delta.resize} <= {2, 3}

    def test_injected_ids_are_fresh_and_consecutive(self):
        spec = ChurnSpec(seed=5, inject_rate=6.0, events=1)
        delta = spec.process().delta_for_event(0, EDGES, {}, shape=(2, 2))
        ids = [eid for eid, _, _, _ in delta.inject]
        assert ids == list(range(max(EDGES) + 1, max(EDGES) + 1 + len(ids)))

    def test_integer_amounts(self):
        spec = ChurnSpec(seed=9, inject_rate=4.0, resize_rate=4.0, events=1)
        delta = spec.process().delta_for_event(
            0, EDGES, {}, shape=(2, 2), integer_amounts=True
        )
        for _, _, _, amount in delta.inject:
            assert isinstance(amount, int) and amount >= 1
        for _, total in delta.resize:
            assert isinstance(total, int) and total >= 1

    def test_delta_applies_cleanly(self):
        """Every drawn delta is valid against the state it was drawn from."""
        process = BUSY.process()
        edges, delivered = dict(EDGES), {}
        for event in range(BUSY.events):
            delta = process.delta_for_event(event, edges, delivered, shape=(2, 2))
            edges = apply_traffic_delta(edges, delivered, delta)
            for eid, _, _, _ in delta.inject:
                delivered.setdefault(eid, 0.0)
            delivered = {e: a for e, a in delivered.items() if e in edges}

    def test_resume_replay_matches_from_identical_state(self):
        """Same (seed, event, state) => same delta — the journal invariant."""
        process = BUSY.process()
        delivered = {0: 4.0, 2: 1.0}
        first = process.delta_for_event(2, EDGES, delivered, shape=(2, 2))
        replay = BUSY.process().delta_for_event(
            2, dict(EDGES), dict(delivered), shape=(2, 2)
        )
        assert first == replay
        assert isinstance(first, TrafficDelta)
