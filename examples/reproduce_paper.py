"""One-shot reproduction driver: every paper figure, one report.

Runs the five evaluation figures at reduced size plus the ablations and
writes a single Markdown report — the quickest way to see the whole
reproduction in one place.  For paper-fidelity runs use the CLI flags
(`kpbs run fig7 --draws 100000`, `kpbs run fig10 --size-scale 1.0`).

Run:  python examples/reproduce_paper.py [output.md]
"""

import sys
import time

from repro.experiments.ablation import AblationConfig, run_ablation_steps
from repro.experiments.fig7 import run_fig7
from repro.experiments.fig8 import run_fig8
from repro.experiments.fig9 import run_fig9
from repro.experiments.fig10_11 import TestbedConfig, run_testbed_comparison
from repro.experiments.simulation import SimulationConfig
from repro.netsim.tcp import TcpParams


def main() -> None:
    out_path = sys.argv[1] if len(sys.argv) > 1 else None
    quick_sim = SimulationConfig(draws=80)
    quick_bed = dict(n_values=(20, 60, 100), tcp_repeats=2, size_scale=0.15,
                     tcp_params=TcpParams(dt=0.005))
    jobs = [
        lambda: run_fig7(quick_sim, k_values=(1, 2, 4, 8, 16)),
        lambda: run_fig8(quick_sim, k_values=(2, 8, 16)),
        lambda: run_fig9(quick_sim, beta_values=(0.25, 1.0, 4.0, 16.0, 64.0)),
        lambda: run_testbed_comparison(TestbedConfig(k=3, **quick_bed)),
        lambda: run_testbed_comparison(TestbedConfig(k=7, **quick_bed)),
        lambda: run_ablation_steps(AblationConfig()),
    ]
    sections = ["# Paper reproduction report (reduced size)", ""]
    for job in jobs:
        start = time.perf_counter()
        result = job()
        elapsed = time.perf_counter() - start
        print(f"[{elapsed:6.1f}s] {result.experiment_id}: {result.title}")
        sections += [
            f"## {result.experiment_id} — {result.title}",
            "",
            result.markdown(),
            "",
            f"*{result.notes}*" if result.notes else "",
            "",
        ]
    report = "\n".join(sections)
    if out_path:
        with open(out_path, "w") as fh:
            fh.write(report)
        print(f"\nwrote {out_path}")
    else:
        print()
        print(report)


if __name__ == "__main__":
    main()
