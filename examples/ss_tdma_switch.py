"""SS/TDMA satellite-switch programming via Birkhoff–von Neumann.

Paper §3 relates K-PBS to Satellite-Switched Time-Division Multiple
Access systems (Bongiovanni et al.): a crossbar switch connects uplink
beams to downlink beams; a *switch program* is a sequence of switching
modes (permutations) with durations, covering a demand matrix.

With β = 0 and an unconstrained switch this is exactly WRGP — each
peeled perfect matching is a switching mode — and for a weight-regular
demand matrix the decomposition is *optimal*: total transmission time
equals the maximum line load.

Run:  python examples/ss_tdma_switch.py
"""

import numpy as np

from repro.core.bvn import birkhoff_von_neumann, reconstruct
from repro.core.bounds import lower_bound
from repro.core.ggp import ggp
from repro.graph.generators import from_traffic_matrix


def main() -> None:
    # Demand matrix: traffic between 4 uplink and 4 downlink beams,
    # deliberately weight-regular (every beam carries 12 units).
    demand = np.array(
        [
            [5.0, 3.0, 0.0, 4.0],
            [2.0, 4.0, 6.0, 0.0],
            [0.0, 5.0, 4.0, 3.0],
            [5.0, 0.0, 2.0, 5.0],
        ]
    )
    print("demand matrix (row = uplink, col = downlink):")
    print(demand)
    print(f"line load: {demand.sum(axis=1)} / {demand.sum(axis=0)}")

    modes = birkhoff_von_neumann(demand)
    print(f"\nswitch program: {len(modes)} modes, total duration "
          f"{sum(c for c, _ in modes):.0f} (= line load, optimal)")
    for i, (duration, perm) in enumerate(modes):
        pairs = ", ".join(f"{u}->{d}" for u, d in enumerate(perm))
        print(f"  mode {i}: {duration:4.0f} time units  [{pairs}]")

    assert np.allclose(reconstruct(modes, 4), demand)
    print("\nreconstruction check passed: modes sum back to the demand")

    # With per-mode reconfiguration cost (the paper's beta) the
    # trade-off appears: GGP's round-up inflates transmission to bound
    # the number of modes.  On a small, already-regular demand the
    # plain decomposition wins; on fragmented demand with many small
    # entries the round-up pays for itself.
    beta = 4.0
    graph = from_traffic_matrix(demand)
    schedule = ggp(graph, k=4, beta=beta)
    naive_cost = sum(c for c, _ in modes) + beta * len(modes)
    print(f"\nwith reconfiguration cost beta={beta} (regular demand):")
    print(f"  plain decomposition: {len(modes)} modes, cost {naive_cost:.0f}")
    print(f"  GGP (beta-aware):    {schedule.num_steps} modes, "
          f"cost {schedule.cost:.0f} "
          f"(lower bound {lower_bound(graph, 4, beta):.0f}) "
          "- round-up not worth it here")

    rng = np.random.default_rng(2)
    fragmented = rng.integers(1, 4, size=(6, 6)).astype(float)
    graph = from_traffic_matrix(fragmented)
    raw = ggp(graph, k=6, beta=0.0)   # exact decomposition, many modes
    aware = ggp(graph, k=6, beta=beta)
    raw_cost = raw.transmission_time + beta * raw.num_steps
    print(f"\nfragmented 6x6 demand (entries 1..3), beta={beta}:")
    print(f"  exact decomposition: {raw.num_steps} modes, cost {raw_cost:.0f}")
    print(f"  GGP (beta-aware):    {aware.num_steps} modes, "
          f"cost {aware.cost:.0f} "
          f"(lower bound {lower_bound(graph, 6, beta):.0f})")


if __name__ == "__main__":
    main()
