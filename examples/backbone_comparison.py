"""Reduced-scale rerun of the paper's Figures 10/11 comparison.

Sweeps the maximum message size and compares brute-force TCP against
GGP/OGGP on the simulated 10+10 testbed for k = 3 and k = 7 (sizes
scaled down 4x so the whole sweep takes well under a minute).

Run:  python examples/backbone_comparison.py
"""

from repro.experiments.fig10_11 import TestbedConfig, run_testbed_comparison


def main() -> None:
    for k in (3, 7):
        config = TestbedConfig(
            k=k,
            n_values=(20, 60, 100),
            tcp_repeats=2,
            size_scale=0.25,
        )
        result = run_testbed_comparison(config)
        print(result.render())
        print()


if __name__ == "__main__":
    main()
