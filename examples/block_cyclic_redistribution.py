"""Local block-cyclic array redistribution (the k = min(n1, n2) regime).

Paper §2.4: when redistribution happens inside one parallel machine the
backbone is not a bottleneck, k equals min(n1, n2), and K-PBS reduces to
classical preemptive bipartite scheduling (PBS).  The same GGP/OGGP code
handles it unchanged.

A 1-D array distributed block-cyclically over 6 processors with block
size 4 is redistributed to 8 processors with block size 3 — the classic
ScaLAPACK-style relayout.

Run:  python examples/block_cyclic_redistribution.py
"""

from repro.analysis.tables import format_table
from repro.core.baselines import list_schedule, sequential_schedule
from repro.core.bounds import lower_bound
from repro.core.ggp import ggp
from repro.core.oggp import oggp
from repro.patterns import block_cyclic_matrix
from repro.graph.generators import from_traffic_matrix


def main() -> None:
    p1, b1 = 6, 4
    p2, b2 = 8, 3
    n_elements = 4800
    matrix = block_cyclic_matrix(n_elements, p1, b1, p2, b2, element_size=1.0)
    graph = from_traffic_matrix(matrix)
    print(f"block-cyclic({b1})/{p1} -> block-cyclic({b2})/{p2}, "
          f"{n_elements} elements: {graph.num_edges} messages")

    k = min(p1, p2)  # local redistribution: backbone not a bottleneck
    beta = 8.0       # per-step software latency, in element-time units

    bound = lower_bound(graph, k, beta)
    rows = []
    for name, build in (
        ("sequential", lambda: sequential_schedule(graph, beta)),
        ("list (non-preemptive)", lambda: list_schedule(graph, k, beta)),
        ("GGP", lambda: ggp(graph, k, beta)),
        ("OGGP", lambda: oggp(graph, k, beta)),
    ):
        schedule = build()
        schedule.validate(graph)
        rows.append((name, schedule.num_steps, schedule.cost, schedule.cost / bound))
    print(f"\nlower bound: {bound:.0f}\n")
    print(format_table(("scheduler", "steps", "cost", "ratio"), rows, floatfmt=".3f"))


if __name__ == "__main__":
    main()
