"""Scheduling MPI-collective redistributions: 2-D FFT transpose & friends.

Coupled solvers exchange data in a handful of collective shapes.  This
example schedules three of them between two clusters and shows how the
lower bound explains each one's behaviour:

- **grid transpose** (2-D FFT): a permutation — one step, perfectly
  parallel;
- **gather**: everything converges on one root — the receiver's 1-port
  serialises the world, and no scheduler can help;
- **all-to-all**: the backbone-bound middle ground where GGP/OGGP's
  machinery actually earns its keep.

Run:  python examples/fft_transpose.py
"""

from repro.analysis.tables import format_table
from repro.core.bounds import lower_bound_report
from repro.core.oggp import oggp
from repro.graph.generators import from_traffic_matrix
from repro.patterns.collectives import (
    alltoall_matrix,
    gather_matrix,
    transpose_matrix,
)


def main() -> None:
    k, beta = 4, 0.5
    cases = [
        ("2-D FFT transpose (4x2 grid)", transpose_matrix(4, 2, 64.0)),
        ("gather to rank 0", gather_matrix(8, 8, 0, 64.0)),
        ("all-to-all", alltoall_matrix(8, 8, 8.0)),
    ]
    rows = []
    for name, matrix in cases:
        graph = from_traffic_matrix(matrix)
        report = lower_bound_report(graph, k, beta)
        schedule = oggp(graph, k=k, beta=beta)
        schedule.validate(graph)
        binding = (
            "node (1-port)" if report.max_node_weight >= report.bandwidth_bound
            else "backbone"
        )
        rows.append(
            (
                name,
                graph.num_edges,
                schedule.num_steps,
                schedule.cost,
                report.value,
                schedule.cost / report.value,
                binding,
            )
        )
    print(f"two clusters, k={k} simultaneous transfers, beta={beta}\n")
    print(
        format_table(
            ("pattern", "msgs", "steps", "cost", "bound", "ratio", "binding"),
            rows,
            floatfmt=".3f",
        )
    )
    print(
        "\nthe transpose is a permutation — ceil(msgs/k) fully parallel "
        "steps; the gather is provably serial at the root regardless of "
        "scheduling; the all-to-all is where message scheduling buys "
        "real parallelism.  OGGP hits the lower bound on all three."
    )


if __name__ == "__main__":
    main()
