"""Move real bytes: the in-process runtime (MPI-substitute) demo.

Builds a 4+4 "cluster" of threads with token-bucket-shaped NICs (the
paper used the rshaper kernel module), computes an OGGP schedule for a
random all-to-all payload set, and executes it — synchronous sends plus
barriers, exactly like the paper's MPICH engine — then runs the same
payloads brute-force.  Payload integrity is verified on arrival.

Run:  python examples/inprocess_cluster.py
"""

import numpy as np

from repro.core.oggp import oggp
from repro.graph.bipartite import BipartiteGraph
from repro.runtime import LocalCluster, run_bruteforce, run_scheduled


def main() -> None:
    rng = np.random.default_rng(11)
    n1 = n2 = 4
    k = 2
    backbone = 80e6          # 80 MB/s
    nic = backbone / k       # shaped as in the paper: NIC = backbone / k

    graph = BipartiteGraph()
    payloads: dict[int, bytes] = {}
    destinations: dict[int, tuple[int, int]] = {}
    for i in range(n1):
        for j in range(n2):
            size = int(rng.integers(150_000, 450_000))
            edge = graph.add_edge(i, j, size)
            payloads[edge.id] = rng.integers(0, 256, size, dtype=np.uint8).tobytes()
            destinations[edge.id] = (i, j)
    total_mb = sum(len(p) for p in payloads.values()) / 1e6
    print(f"{graph.num_edges} messages, {total_mb:.1f} MB total, "
          f"k={k}, NIC {nic/1e6:.0f} MB/s, backbone {backbone/1e6:.0f} MB/s")

    schedule = oggp(graph, k=k, beta=0.002)
    schedule.validate(graph)
    print(f"OGGP: {schedule.num_steps} steps")

    cluster = LocalCluster(n1, n2, nic_rate1=nic, nic_rate2=nic,
                           backbone_rate=backbone)
    report = run_scheduled(cluster, schedule, payloads, destinations)
    report.raise_on_errors()
    print(f"scheduled run: {report.total_seconds:.3f}s "
          f"({report.bytes_moved / 1e6:.1f} MB verified)")

    cluster = LocalCluster(n1, n2, nic_rate1=nic, nic_rate2=nic,
                           backbone_rate=backbone)
    report = run_bruteforce(cluster, payloads, destinations)
    report.raise_on_errors()
    print(f"brute-force run: {report.total_seconds:.3f}s "
          f"({report.bytes_moved / 1e6:.1f} MB verified)")
    print(f"ideal floor (volume/backbone): "
          f"{sum(len(p) for p in payloads.values()) / backbone:.3f}s")


if __name__ == "__main__":
    main()
