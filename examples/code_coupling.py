"""Code coupling: redistribute between an ocean and an atmosphere model.

The paper's motivating scenario (§1): two simulation codes run on two
clusters joined by a backbone; every coupling interval, boundary data
must move from one to the other as fast as possible.

This example builds a skewed coupling pattern (coastal nodes exchange
most of the data), schedules it with GGP and OGGP, and measures both
against the brute-force TCP baseline on the simulated platform.

Run:  python examples/code_coupling.py
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.core.bounds import lower_bound
from repro.graph.generators import from_traffic_matrix
from repro.netsim import NetworkSpec, run_redistribution
from repro.patterns import zipf_matrix


def main() -> None:
    # Ocean model: 12 nodes; atmosphere: 8 nodes.  NICs 100 Mbit shaped
    # to 25 Mbit/s, backbone 100 Mbit/s -> k = 4 simultaneous flows.
    spec = NetworkSpec(
        n1=12, n2=8, nic_rate1=25.0, nic_rate2=25.0,
        backbone_rate=100.0, step_setup=0.01,
    )
    print(f"platform: {spec.n1}+{spec.n2} nodes, k={spec.k}, "
          f"per-flow rate {spec.flow_rate} Mbit/s")

    # 2 Gbit of coupling data, concentrated on a few boundary nodes.
    traffic = zipf_matrix(rng=7, n1=spec.n1, n2=spec.n2, total=2000.0)
    graph = from_traffic_matrix(traffic, speed=spec.flow_rate)
    bound = lower_bound(graph, spec.k, spec.step_setup)
    print(f"coupling volume: {traffic.sum():.0f} Mbit over "
          f"{int((traffic > 0).sum())} node pairs; lower bound {bound:.1f}s")

    rows = []
    brute = run_redistribution(spec, traffic, "bruteforce", rng=1)
    rows.append(("brute force (TCP)", brute.total_time, 1, float("nan")))
    for method in ("ggp", "oggp"):
        out = run_redistribution(spec, traffic, method)
        gain = 100.0 * (1.0 - out.total_time / brute.total_time)
        rows.append((method.upper(), out.total_time, out.num_steps, gain))
    print()
    print(format_table(
        ("engine", "time_s", "steps", "gain_vs_brute_%"), rows, floatfmt=".2f"
    ))
    print("\nscheduled engines stay within 2x of the lower bound by "
          "construction; the gain comes from avoiding TCP congestion "
          "collapse on the oversubscribed backbone.")


if __name__ == "__main__":
    main()
