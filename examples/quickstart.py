"""Quickstart: schedule a redistribution pattern with GGP/OGGP.

Run:  python examples/quickstart.py
"""

from repro import ggp, oggp, lower_bound
from repro.core.exact import exact_cost
from repro.graph import BipartiteGraph, paper_figure2_graph


def main() -> None:
    # A redistribution pattern is a weighted bipartite graph: left nodes
    # send, right nodes receive, weights are transfer times (or volumes
    # at unit speed).  This is the paper's Figure 2 example.
    graph = paper_figure2_graph()
    print("pattern:")
    for e in graph.edges_sorted():
        print(f"  node {e.left} -> node {e.right}: {e.weight} units")

    # The backbone admits at most k=3 simultaneous transfers and each
    # communication step costs beta=1 to set up.
    k, beta = 3, 1.0

    bound = lower_bound(graph, k, beta)
    optimum = exact_cost(graph, k, beta)  # tiny instance: exact B&B works
    print(f"\nlower bound: {bound}, exact optimum: {optimum}")

    for name, algorithm in (("GGP", ggp), ("OGGP", oggp)):
        schedule = algorithm(graph, k=k, beta=beta)
        schedule.validate(graph)  # matching/1-port/k/coverage invariants
        print(f"\n{name} -> cost {schedule.cost} "
              f"(ratio {schedule.cost / bound:.3f}, guarantee <= 2)")
        print(schedule.describe())

    # Arbitrary patterns work the same way:
    custom = BipartiteGraph.from_edges(
        [(0, 0, 10.0), (0, 1, 4.0), (1, 1, 6.5), (2, 0, 3.0), (2, 2, 8.0)]
    )
    schedule = oggp(custom, k=2, beta=0.5)
    schedule.validate(custom)
    print(f"\ncustom pattern: {schedule.num_steps} steps, cost {schedule.cost:.2f}, "
          f"bound {lower_bound(custom, 2, 0.5):.2f}")


if __name__ == "__main__":
    main()
