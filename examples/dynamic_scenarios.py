"""The paper's §6 future-work scenarios, implemented and demonstrated.

1. Barrier relaxation (§2.1): convert a synchronous OGGP schedule into
   an asynchronous timeline and show both as Gantt charts.
2. Dynamic backbone: adaptive rescheduling vs a static schedule when
   the backbone capacity dips mid-redistribution.
3. Online pattern: batch scheduling of messages that arrive over time.
4. Local dispatch: pre/post-redistribution on a hotspot pattern.

Run:  python examples/dynamic_scenarios.py
"""

import numpy as np

from repro.analysis.gantt import gantt_async, gantt_sync
from repro.core.adaptive import adaptive_schedule_run, static_schedule_run
from repro.core.oggp import oggp
from repro.core.online import (
    offline_oracle_cost,
    poisson_arrivals,
    run_online_batches,
)
from repro.core.preredistribution import schedule_with_preredistribution
from repro.core.relax import relax_schedule
from repro.graph.bipartite import BipartiteGraph
from repro.graph.generators import from_traffic_matrix
from repro.netsim.topology import NetworkSpec
from repro.netsim.trace import BandwidthTrace
from repro.patterns.matrices import hotspot_matrix, uniform_matrix


def demo_relaxation() -> None:
    print("=" * 70)
    print("1. Barrier relaxation (sync steps -> async timeline)")
    graph = BipartiteGraph.from_edges(
        [(0, 0, 6), (0, 1, 3), (1, 1, 5), (2, 2, 7), (1, 2, 2)]
    )
    sync = oggp(graph, k=2, beta=2.0)
    relaxed = relax_schedule(sync)
    relaxed.validate(graph)
    print(f"sync cost {sync.cost:.1f} vs async makespan {relaxed.makespan:.1f}")
    print("\nsynchronous (bands = steps, digits = destination):")
    print(gantt_sync(sync))
    print("\nasynchronous (digits = destination, gaps = idle):")
    print(gantt_async(relaxed))


def demo_dynamic_backbone() -> None:
    print("=" * 70)
    print("2. Varying backbone: static schedule vs adaptive rescheduling")
    # Backbone-bound platform (k = 4): the dip actually binds.
    spec = NetworkSpec(n1=10, n2=10, nic_rate1=25.0, nic_rate2=25.0,
                       backbone_rate=100.0, step_setup=0.01)
    traffic = uniform_matrix(3, 10, 10, 15.0, 45.0)
    graph = from_traffic_matrix(traffic, speed=spec.flow_rate)
    horizon = traffic.sum() / spec.backbone_rate
    trace = BandwidthTrace.from_pairs(
        [(0, 100.0), (0.2 * horizon, 25.0), (0.8 * horizon, 100.0)]
    )
    static = static_schedule_run(graph, spec, trace)
    adaptive = adaptive_schedule_run(graph, spec, trace)
    print(f"backbone dips to 25% between t={0.2 * horizon:.1f}s and "
          f"t={0.8 * horizon:.1f}s")
    print(f"static:   {static.total_time:7.2f}s ({static.num_steps} steps, "
          f"k fixed at {static.k_used[0]})")
    print(f"adaptive: {adaptive.total_time:7.2f}s ({adaptive.num_steps} steps,"
          f" k sequence {'/'.join(map(str, adaptive.k_used))})")
    gain = 100 * (1 - adaptive.total_time / static.total_time)
    print(f"adaptive gain: {gain:.1f}%")


def demo_online() -> None:
    print("=" * 70)
    print("3. Online pattern: batch scheduling of arriving messages")
    arrivals = poisson_arrivals(7, n1=6, n2=6, count=40, rate=3.0,
                                size_low=1.0, size_high=15.0)
    online = run_online_batches(arrivals, k=4, beta=0.5)
    oracle = offline_oracle_cost(arrivals, k=4, beta=0.5)
    print(f"{len(arrivals)} messages arriving at ~3/s")
    print(f"online completion {online.completion_time:.1f} in "
          f"{online.rounds} rounds ({online.total_steps} steps)")
    print(f"clairvoyant oracle {oracle:.1f} -> empirical competitive ratio "
          f"{online.completion_time / oracle:.2f}")


def demo_preredistribution() -> None:
    print("=" * 70)
    print("4. Local dispatch on a hotspot pattern")
    matrix = hotspot_matrix(5, 8, 8, background=4.0, hotspot=90.0, num_hot=2)
    for flags, label in (
        (dict(balance_send=False, balance_recv=False), "plain OGGP"),
        (dict(balance_send=True, balance_recv=True), "with local dispatch"),
    ):
        out = schedule_with_preredistribution(
            matrix, k=4, beta=0.5, flow_rate=10.0, local_rate=100.0, **flags
        )
        print(f"{label:20s} total {out.total_time:7.2f} "
              f"(pre {out.pre_time:.2f} + backbone {out.backbone_time:.2f} "
              f"+ post {out.post_time:.2f})")


if __name__ == "__main__":
    demo_relaxation()
    demo_dynamic_backbone()
    demo_online()
    demo_preredistribution()
